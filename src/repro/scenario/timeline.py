"""Event timeline: applying and reverting network events on a topology.

A :class:`ScenarioTimeline` turns a :class:`~repro.scenario.plan.ScenarioPlan`
into an ordered list of *transitions* (event starts and, for transient
events, their reverts) and applies them to a
:class:`~repro.topology.network.Topology` as simulation time advances.
Every mutation goes through the topology's scenario mutators
(``remove_as_link`` / ``insert_as_link`` / ``detach_exchange_link`` /
``reattach_exchange_link``), which toggle AS-level structure but never
the router/link substrate, and each applied effect records its exact
inverse — :meth:`ScenarioTimeline.reset` restores a byte-identical
pristine topology (asserted route-for-route by
``tests/scenario/test_timeline.py``).

**Selective reconvergence.** Removing an AS adjacency (or isolating an
AS) invalidates the BGP route cache, but the Gao–Rexford stable state is
*unique*: a destination whose installed routes nowhere traverse the
removed adjacency (and nowhere pass through a downed AS) keeps exactly
the same stable state, so its converged table is salvaged across the
mutation instead of being recomputed.  Only the affected destinations
are reconverged — lazily, by the next
:meth:`~repro.routing.bgp.BGPTable.converge_all` — under the
``scenario.reconverge`` span.  ``reconverge="full"`` disables the
salvage (everything reconverges); it is kept as the differential-test
oracle and the pre-optimization benchmark baseline.

Construct the timeline **before** any netsim state: ``new-transit``
events pre-materialize their router-level exchange link into the
substrate (kept out of the exchange index until activation), and
:class:`~repro.netsim.conditions.NetworkConditions` sizes its per-link
arrays at construction.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Callable

from repro.obs import runtime as obs
from repro.routing.bgp import BGPRoute
from repro.scenario.plan import (
    KIND_DEPEER,
    KIND_LINK_DOWN,
    KIND_NEW_TRANSIT,
    KIND_NODE_DOWN,
    KIND_REGION_OUTAGE,
    ScenarioEvent,
    ScenarioPlan,
)
from repro.topology.asys import ASLink, Relationship
from repro.topology.links import LinkKind
from repro.topology.network import Topology

#: Reconvergence strategies (see module docstring).
RECONVERGE_MODES = ("affected", "full")


class ScenarioError(RuntimeError):
    """Raised when a plan cannot be realized on a topology (CLI exit 2)."""


@dataclass(frozen=True, slots=True)
class _Transition:
    """One timeline step: an event's effect starting or reverting.

    Sort order is ``(t, phase, plan position)`` with reverts before
    applies, so an adjacency that comes back up at the instant another
    event fires is restored first.
    """

    t: float
    phase: int  # 0 = revert, 1 = apply
    position: int  # index of the event in the plan
    event: ScenarioEvent

    @property
    def sort_key(self) -> tuple[float, int, int]:
        return (self.t, self.phase, self.position)


@dataclass(slots=True)
class _Applied:
    """Undo log of one applied event (inverse ops, in apply order)."""

    position: int
    undos: list[Callable[[], None]] = field(default_factory=list)


class ScenarioTimeline:
    """Applies a scenario plan's network events to a topology over time.

    The timeline is monotonic: :meth:`advance_to` may only move forward.
    :meth:`reset` reverts every outstanding effect (in reverse order)
    and rewinds to the start, leaving the topology pristine.
    """

    def __init__(
        self,
        topo: Topology,
        plan: ScenarioPlan,
        *,
        reconverge: str = "affected",
    ) -> None:
        """
        Args:
            topo: Topology the events apply to (hosts already placed).
            plan: The scenario; flap storms are ignored here (they are
                route-dynamics, not topology — see
                :class:`~repro.scenario.run.StormFlapModel`).
            reconverge: ``"affected"`` salvages converged BGP tables for
                destinations the mutation provably cannot change;
                ``"full"`` drops everything (reference oracle).

        Raises:
            ScenarioError: when an event names an unknown ASN, region or
                adjacency, or a ``new-transit`` cannot be realized.
            ValueError: on an unknown ``reconverge`` mode.
        """
        if reconverge not in RECONVERGE_MODES:
            raise ValueError(
                f"unknown reconverge mode {reconverge!r}; "
                f"choose from {RECONVERGE_MODES}"
            )
        self._topo = topo
        self._plan = plan
        self._mode = reconverge
        # position -> (ASLink, exchange link id) for new-transit events.
        self._transit_parts: dict[int, tuple[ASLink, int]] = {}
        self._validate_and_materialize()
        transitions: list[_Transition] = []
        for position, event in enumerate(plan.topology_events()):
            transitions.append(
                _Transition(t=event.at_s, phase=1, position=position, event=event)
            )
            if event.end_s is not None:
                transitions.append(
                    _Transition(
                        t=event.end_s, phase=0, position=position, event=event
                    )
                )
        self._transitions = sorted(transitions, key=lambda tr: tr.sort_key)
        self._cursor = 0
        self._now = 0.0
        self._applied: list[_Applied] = []

    # -- construction-time validation ---------------------------------------

    def _validate_and_materialize(self) -> None:
        topo = self._topo
        regions = {r.city.region for r in topo.routers}
        for position, event in enumerate(self._plan.topology_events()):
            if event.kind in (KIND_LINK_DOWN, KIND_DEPEER):
                a, b = event.endpoints
                self._require_asn(a)
                self._require_asn(b)
                if topo.as_link_between(a, b) is None:
                    raise ScenarioError(
                        f"{event.to_clause()}: no AS{a}-AS{b} adjacency "
                        "in this topology"
                    )
            elif event.kind == KIND_NODE_DOWN:
                self._require_asn(event.asn)
            elif event.kind == KIND_REGION_OUTAGE:
                if event.key not in regions:
                    raise ScenarioError(
                        f"{event.to_clause()}: no routers in region "
                        f"{event.key!r} (known: {sorted(regions)})"
                    )
            elif event.kind == KIND_NEW_TRANSIT:
                self._materialize_transit(position, event)

    def _require_asn(self, asn: int) -> None:
        if asn not in self._topo.ases:
            raise ScenarioError(f"unknown ASN {asn} in scenario plan")

    def _materialize_transit(self, position: int, event: ScenarioEvent) -> None:
        """Create a ``new-transit`` event's adjacency and exchange link.

        The router-level exchange link must live in the substrate before
        netsim arrays are sized, so it is created now; it stays out of
        the exchange index (and the :class:`ASLink` unregistered) until
        the event activates, keeping the pristine topology's behavior
        unchanged.
        """
        topo = self._topo
        provider, customer = event.endpoints
        self._require_asn(provider)
        self._require_asn(customer)
        if topo.as_link_between(provider, customer) is not None:
            raise ScenarioError(
                f"{event.to_clause()}: AS{provider} and AS{customer} "
                "are already adjacent"
            )
        a, b = min(provider, customer), max(provider, customer)
        rel_ab = (
            Relationship.CUSTOMER if a == provider else Relationship.PROVIDER
        )
        shared = sorted(
            city.name
            for city in topo.ases[a].cities
            if topo.has_core_router(a, city.name)
            and topo.has_core_router(b, city.name)
        )
        if not shared:
            raise ScenarioError(
                f"{event.to_clause()}: AS{a} and AS{b} share no city with "
                "core routers to host an exchange point"
            )
        city = shared[0]
        link = topo.add_link(
            topo.core_router(a, city),
            topo.core_router(b, city),
            LinkKind.EXCHANGE,
        )
        as_link = ASLink(a=a, b=b, rel_ab=rel_ab, exchange_cities=(city,))
        self._transit_parts[position] = (as_link, link.link_id)

    # -- public API ----------------------------------------------------------

    @property
    def now(self) -> float:
        """Current timeline position, seconds."""
        return self._now

    @property
    def last_transition_s(self) -> float:
        """Time of the final topology transition; 0.0 if there are none."""
        return self._transitions[-1].t if self._transitions else 0.0

    def boundaries(self) -> list[float]:
        """Sorted distinct topology-transition times (segment edges)."""
        return sorted({tr.t for tr in self._transitions})

    def advance_to(self, t: float) -> int:
        """Apply every transition scheduled at or before ``t``.

        Returns the number of transitions applied.  Salvageable BGP
        state survives the mutation (see module docstring); the rest is
        invalidated and reconverges lazily.

        Raises:
            ScenarioError: if ``t`` is behind the current position.
        """
        if t < self._now:
            raise ScenarioError(
                f"timeline is monotonic: cannot rewind from {self._now:g} "
                f"to {t:g} (use reset())"
            )
        self._now = t
        if (
            self._cursor >= len(self._transitions)
            or self._transitions[self._cursor].t > t
        ):
            return 0
        saved = dict(self._topo.routing_cache("bgp"))
        removed_pairs: set[frozenset[int]] = set()
        removed_asns: set[int] = set()
        additive = False
        mutated = False
        applied = 0
        with obs.span("scenario.apply") as sp:
            while (
                self._cursor < len(self._transitions)
                and self._transitions[self._cursor].t <= t
            ):
                tr = self._transitions[self._cursor]
                self._cursor += 1
                applied += 1
                if tr.phase == 1:
                    effect = self._apply_event(
                        tr.position, tr.event, removed_pairs, removed_asns
                    )
                    mutated = mutated or effect.mutated
                    additive = additive or effect.additive
                else:
                    if self._revert_event(tr.position):
                        mutated = True
                        additive = True  # restored capacity: all dests may improve
            sp.set("t", t)
            sp.set("transitions", applied)
        obs.count("scenario.transitions", applied)
        if mutated:
            self._salvage(saved, removed_pairs, removed_asns, additive)
        return applied

    def reset(self) -> None:
        """Revert every outstanding effect and rewind to the start.

        The topology is left exactly as constructed (adjacency order,
        exchange-link index, route caches all pristine-equivalent);
        resolvers built during the scenario remain stale and must be
        rebuilt.
        """
        for entry in reversed(self._applied):
            for undo in reversed(entry.undos):
                undo()
        self._applied.clear()
        self._cursor = 0
        self._now = 0.0

    # -- effects -------------------------------------------------------------

    @dataclass(frozen=True, slots=True)
    class _Effect:
        mutated: bool  # whether the AS graph (BGP cache) was invalidated
        additive: bool  # whether capacity was added (salvage impossible)

    def _apply_event(
        self,
        position: int,
        event: ScenarioEvent,
        removed_pairs: set[frozenset[int]],
        removed_asns: set[int],
    ) -> "ScenarioTimeline._Effect":
        entry = _Applied(position=position)
        mutated = False
        additive = False
        if event.kind in (KIND_LINK_DOWN, KIND_DEPEER):
            a, b = event.endpoints
            if self._remove_adjacency(a, b, entry):
                removed_pairs.add(frozenset((a, b)))
                mutated = True
        elif event.kind == KIND_NODE_DOWN:
            asn = event.asn
            for as_link in list(self._topo.as_neighbors(asn)):
                if self._remove_adjacency(as_link.a, as_link.b, entry):
                    mutated = True
            removed_asns.add(asn)
        elif event.kind == KIND_REGION_OUTAGE:
            mutated = self._apply_region_outage(event.key, entry, removed_pairs)
        elif event.kind == KIND_NEW_TRANSIT:
            as_link, link_id = self._transit_parts[position]
            topo = self._topo
            topo.insert_as_link(len(topo.as_links), as_link)
            entry.undos.append(lambda: topo.remove_as_link(as_link))
            topo.reattach_exchange_link(link_id, 0)
            entry.undos.append(lambda: topo.detach_exchange_link(link_id))
            mutated = True
            additive = True
        self._applied.append(entry)
        return self._Effect(mutated=mutated, additive=additive)

    def _remove_adjacency(self, a: int, b: int, entry: _Applied) -> bool:
        """Take down one AS adjacency and its exchange links.

        No-op (returns False) when the adjacency is already gone — an
        earlier overlapping event removed it first.
        """
        topo = self._topo
        as_link = topo.as_link_between(a, b)
        if as_link is None:
            return False
        for link in topo.exchange_links_between(a, b):
            self._detach(link.link_id, entry)
        index = topo.remove_as_link(as_link)
        entry.undos.append(
            lambda: topo.insert_as_link(index, as_link)
        )
        return True

    def _apply_region_outage(
        self,
        region: str,
        entry: _Applied,
        removed_pairs: set[frozenset[int]],
    ) -> bool:
        """Detach every exchange link with an endpoint in ``region``.

        An adjacency that loses *all* its exchange links is removed
        outright — leaving it registered would make BGP advertise routes
        the forwarding plane cannot realize.
        """
        topo = self._topo
        mutated = False
        for as_link in list(topo.as_links):
            links = topo.exchange_links_between(as_link.a, as_link.b)
            hit = [
                link.link_id
                for link in links
                if topo.routers[link.u].city.region == region
                or topo.routers[link.v].city.region == region
            ]
            if not hit:
                continue
            for link_id in hit:
                self._detach(link_id, entry)
            if len(hit) == len(links):
                index = topo.remove_as_link(as_link)
                entry.undos.append(
                    lambda index=index, as_link=as_link: topo.insert_as_link(
                        index, as_link
                    )
                )
                removed_pairs.add(frozenset((as_link.a, as_link.b)))
                mutated = True
        return mutated

    def _detach(self, link_id: int, entry: _Applied) -> None:
        topo = self._topo
        position = topo.detach_exchange_link(link_id)
        entry.undos.append(
            lambda: topo.reattach_exchange_link(link_id, position)
        )

    def _revert_event(self, position: int) -> bool:
        """Replay an event's undo log; True when anything was undone."""
        for i, entry in enumerate(self._applied):
            if entry.position == position:
                for undo in reversed(entry.undos):
                    undo()
                had_effect = bool(entry.undos)
                del self._applied[i]
                return had_effect
        return False

    # -- selective reconvergence ---------------------------------------------

    def _salvage(
        self,
        saved: dict[str, dict[int, dict[int, BGPRoute]]],
        removed_pairs: set[frozenset[int]],
        removed_asns: set[int],
        additive: bool,
    ) -> None:
        """Restore converged tables the mutation provably did not touch.

        ``saved`` is the pre-mutation BGP cache bag (algorithm -> dest ->
        holder -> route).  In ``"full"`` mode, or after any additive
        change (new capacity can improve routes anywhere), nothing is
        salvaged and every destination reconverges.
        """
        if self._mode != "affected" or additive:
            return
        with obs.span("scenario.reconverge") as sp:
            fresh = self._topo.routing_cache("bgp")
            retained = 0
            invalidated = 0
            for algorithm, store in saved.items():
                keep: dict[int, dict[int, BGPRoute]] = {}
                for dest, table in store.items():
                    if self._dest_affected(
                        dest, table, removed_pairs, removed_asns
                    ):
                        invalidated += 1
                        continue
                    if removed_asns:
                        # Isolated ASes lose their own entries even in
                        # unaffected tables (they no longer hold routes).
                        table = {
                            holder: route
                            for holder, route in table.items()
                            if holder not in removed_asns
                        }
                    keep[dest] = table
                    retained += 1
                fresh[algorithm] = keep
            sp.set("retained", retained)
            sp.set("invalidated", invalidated)
        obs.count("scenario.dests_retained", retained)
        obs.count("scenario.dests_invalidated", invalidated)

    @staticmethod
    def _dest_affected(
        dest: int,
        table: dict[int, BGPRoute],
        removed_pairs: set[frozenset[int]],
        removed_asns: set[int],
    ) -> bool:
        """Whether a destination's stable state can change.

        The Gao–Rexford stable state is unique; removing an adjacency
        (or isolating an AS) only shrinks candidate sets, so a
        destination is unaffected exactly when no installed route at a
        surviving AS traverses what was removed.
        """
        if dest in removed_asns:
            return True
        for holder, route in table.items():
            if holder in removed_asns:
                continue  # the isolated AS's own entries are just dropped
            path = route.as_path
            if removed_asns and any(asn in removed_asns for asn in path):
                return True
            if removed_pairs and any(
                frozenset(pair) in removed_pairs
                for pair in zip(path, path[1:])
            ):
                return True
        return False

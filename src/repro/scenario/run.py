"""Scenario driver: thread a what-if timeline through the measurement pipeline.

A :class:`ScenarioRun` stands up a deterministic 1999-era environment,
splits the simulated horizon into *segments* at the scenario's topology
boundaries, and runs one measurement :class:`~repro.measurement.collector.Campaign`
per segment against the mutated topology — so probes during an outage see
the rerouted (or absent) paths, and probes after a revert see the healed
network.  Flap storms never touch the topology; they ride along as a
:class:`StormFlapModel` wrapped around the ordinary route-flap process.

The whole run is a pure function of ``(plan, seed)``: the same plan
replayed with any ``--routing-jobs`` setting yields a byte-identical
dataset (asserted by CI's ``whatif-replay`` step).
"""

from __future__ import annotations

from dataclasses import dataclass
from fnmatch import fnmatchcase

from repro.datasets.dataset import Dataset, DatasetMeta
from repro.measurement.collector import Campaign
from repro.measurement.records import CollectionStats, PathInfo, TracerouteRecord
from repro.measurement.schedulers import poisson_episodes
from repro.netsim.clock import SECONDS_PER_DAY
from repro.netsim.conditions import BUCKET_SECONDS, NetworkConditions
from repro.obs import runtime as obs
from repro.routing.dynamics import RouteFlapModel
from repro.routing.forwarding import ForwardingError, PathResolver
from repro.scenario.availability import AvailabilityReport, analyze_availability
from repro.scenario.plan import ScenarioPlan
from repro.scenario.timeline import ScenarioTimeline
from repro.topology.generator import (
    TopologyConfig,
    build_topology,
    generate_topology,
    place_hosts,
)


class StormFlapModel:
    """A route-flap process with plan-driven flap storms layered on top.

    Outside any storm interval, decisions delegate to the wrapped base
    model.  During a storm, every member pair oscillates between its
    primary and secondary route each congestion bucket — the classic
    persistent-oscillation signature of pathological BGP churn.

    Storm membership comes from the plan's ``flap-storm`` clauses, whose
    keys are :func:`fnmatch.fnmatchcase` globs over ``src->dst`` pair
    names.  Because storms switch per bucket, this model declares
    ``window_s`` equal to the congestion bucket; the base model's
    coarser window still divides evenly into it (its decisions floor
    time internally), so base behaviour is unchanged.
    """

    def __init__(
        self,
        base: RouteFlapModel,
        plan: ScenarioPlan,
        pair_names: list[str],
    ) -> None:
        """
        Args:
            base: The background flap process.
            plan: Scenario whose ``flap-storm`` clauses define storms.
            pair_names: ``"src->dst"`` names in campaign pair order
                (index-aligned with the sampler's pair list).
        """
        self._base = base
        self._storms: list[tuple[frozenset[int], float, float]] = []
        for event in plan.storms():
            members = frozenset(
                i
                for i, name in enumerate(pair_names)
                if fnmatchcase(name, event.key)
            )
            end_s = event.end_s
            assert end_s is not None  # flap-storm requires for=
            self._storms.append((members, event.at_s, end_s))

    @property
    def window_s(self) -> float:
        """Storms switch per congestion bucket (finer than the base)."""
        return BUCKET_SECONDS

    def is_flappy(self, pair_index: int) -> bool:
        """Storm members flap by decree; others per the base model."""
        if any(pair_index in members for members, _, _ in self._storms):
            return True
        return self._base.is_flappy(pair_index)

    def on_secondary(self, pair_index: int, t: float) -> bool:
        """Secondary-route decision at time ``t`` (pure function)."""
        for members, at_s, end_s in self._storms:
            if pair_index in members and at_s <= t < end_s:
                return int(t // BUCKET_SECONDS) % 2 == 1
        return self._base.on_secondary(pair_index, t)


@dataclass(frozen=True, slots=True)
class SegmentSummary:
    """What one topology segment of the run observed."""

    start_s: float
    end_s: float
    requested: int
    completed: int
    unreachable_pairs: tuple[tuple[str, str], ...]
    pairs_rerouted: int


@dataclass(frozen=True, slots=True)
class ScenarioReport:
    """Human-readable outcome of a scenario run."""

    plan_spec: str
    seed: int
    n_hosts: int
    horizon_s: float
    segments: tuple[SegmentSummary, ...]
    permanently_disconnected: tuple[tuple[str, str], ...]
    availability: AvailabilityReport

    def render(self) -> str:
        """The report section body for ``repro whatif``."""
        lines = [
            "What-if scenario report",
            f"  plan:    {self.plan_spec or '(no events)'}",
            f"  seed:    {self.seed}   hosts: {self.n_hosts}   "
            f"horizon: {self.horizon_s:g} s",
            "",
            "  segment            requests  completed  unreachable  rerouted",
        ]
        for seg in self.segments:
            lines.append(
                f"  [{seg.start_s:7g}, {seg.end_s:7g})"
                f"  {seg.requested:8d}  {seg.completed:9d}"
                f"  {len(seg.unreachable_pairs):11d}  {seg.pairs_rerouted:8d}"
            )
        if self.permanently_disconnected:
            lines.append("")
            lines.append(
                f"  permanently disconnected pairs "
                f"({len(self.permanently_disconnected)}):"
            )
            for src, dst in self.permanently_disconnected:
                lines.append(f"    {src} -> {dst}")
        else:
            lines.append("")
            lines.append("  no pair is left permanently disconnected")
        lines.append("")
        lines.append(self.availability.render())
        return "\n".join(lines)


class ScenarioRun:
    """Executes one scenario end to end: dataset out, report out.

    Construction builds the environment (topology, hosts, timeline,
    conditions — in that order, since ``new-transit`` events must
    materialize their substrate link before netsim sizes its arrays);
    :meth:`execute` runs the campaign segments and the availability
    analysis, then resets the timeline so the topology ends pristine.
    """

    def __init__(
        self,
        plan: ScenarioPlan,
        *,
        seed: int = 1999,
        n_hosts: int = 12,
        mean_interval_s: float = 600.0,
        trailing_buckets: int = 2,
        reconverge: str = "affected",
        scale: str | None = None,
    ) -> None:
        """
        Args:
            plan: The scenario to run (an empty plan is a plain
                measurement run).
            seed: Master seed; every stream below derives from it.
            n_hosts: Measurement host pool size.
            scale: Topology scale preset name (see
                :data:`repro.topology.scale.SCALE_PRESETS`); None keeps
                the default 1999-era paper topology.
            mean_interval_s: Poisson mean between measurement episodes
                (each episode requests every ordered pair, UW4-A style,
                so the availability graph gets full pair coverage).
            trailing_buckets: Congestion buckets of quiet time appended
                after the last transition, so the healed (or broken)
                end state is actually observed.
            reconverge: Timeline reconvergence mode (``"affected"`` or
                ``"full"``; see :mod:`repro.scenario.timeline`).
        """
        if trailing_buckets < 1:
            raise ValueError("trailing_buckets must be >= 1")
        self.plan = plan
        self.seed = seed
        if scale is None:
            topo_cfg = TopologyConfig.for_era("1999", seed=seed)
            self.topo = generate_topology(topo_cfg)
            capacity_scale = topo_cfg.capacity_scale
        else:
            self.topo, capacity_scale = build_topology(scale, seed=seed)
        hosts = place_hosts(
            self.topo,
            n_hosts,
            seed=seed + 7,
            north_america_only=scale is None or scale.startswith("paper-"),
            rate_limit_fraction=0.0,
            name_prefix="whatif",
            capacity_scale=capacity_scale,
        )
        self.hosts = [h.name for h in hosts]
        self.timeline = ScenarioTimeline(self.topo, plan, reconverge=reconverge)
        self.conditions = NetworkConditions(self.topo, seed=seed + 13)
        self.horizon_s = (
            max(plan.last_transition_s, self.timeline.last_transition_s)
            + trailing_buckets * BUCKET_SECONDS
        )
        self._mean_interval_s = mean_interval_s

    def _segment_edges(self) -> list[float]:
        edges = {0.0, self.horizon_s}
        edges.update(
            b for b in self.timeline.boundaries() if 0.0 < b < self.horizon_s
        )
        return sorted(edges)

    def _baseline_paths(self) -> dict[tuple[str, str], PathInfo]:
        """Default-route facts on the pristine topology (pre-scenario)."""
        resolver = PathResolver(self.topo)
        pairs = [(a, b) for a in self.hosts for b in self.hosts if a != b]
        resolver.bgp.converge_all(
            sorted({self.topo.host(name).asn for name in self.hosts})
        )
        out: dict[tuple[str, str], PathInfo] = {}
        for a, b in pairs:
            try:
                rt = resolver.resolve_round_trip(a, b)
            except ForwardingError:
                continue  # pristine disconnection: excluded from baselines
            out[(a, b)] = PathInfo(
                src=a,
                dst=b,
                as_path=rt.forward.as_path,
                hop_count=rt.forward.hop_count,
                prop_delay_ms=rt.rtt_prop_ms,
            )
        return out

    def execute(self) -> tuple[Dataset, ScenarioReport]:
        """Run the scenario; returns the dataset and the report.

        The dataset's ``path_info`` holds the *pristine* default routes
        (the baseline every segment is compared against); per-segment
        routing lives in the report.
        """
        with obs.span("scenario.run") as sp:
            sp.set("plan", self.plan.to_spec())
            sp.set("seed", self.seed)
            result = self._execute()
        return result

    def _execute(self) -> tuple[Dataset, ScenarioReport]:
        baseline = self._baseline_paths()
        pair_names = [
            f"{a}->{b}" for a in self.hosts for b in self.hosts if a != b
        ]
        flap_model = StormFlapModel(
            RouteFlapModel(seed=self.seed), self.plan, pair_names
        )
        requests = list(
            poisson_episodes(
                self.hosts,
                self.horizon_s,
                self._mean_interval_s,
                seed=self.seed + 5,
            )
        )
        edges = self._segment_edges()
        records: list[TracerouteRecord] = []
        stats = CollectionStats()
        segments: list[SegmentSummary] = []
        last_unreachable: tuple[tuple[str, str], ...] = ()
        try:
            for k, (t0, t1) in enumerate(zip(edges, edges[1:])):
                self.timeline.advance_to(t0)
                campaign = Campaign(
                    self.topo,
                    self.conditions,
                    self.hosts,
                    resolver=PathResolver(self.topo),
                    seed=self.seed + 7919 * (k + 1),
                    control_failure_prob=0.0,
                    flap_model=flap_model,
                    allow_unreachable=True,
                )
                seg_requests = [r for r in requests if t0 <= r.t < t1]
                seg_records, seg_stats = campaign.run_traceroutes(seg_requests)
                records.extend(seg_records)
                stats.requested += seg_stats.requested
                stats.completed += seg_stats.completed
                stats.control_failures += seg_stats.control_failures
                stats.rate_limited_probes += seg_stats.rate_limited_probes
                stats.blacked_out += seg_stats.blacked_out
                stats.unreachable += seg_stats.unreachable
                seg_paths = campaign.path_info()
                rerouted = sum(
                    1
                    for pair, info in seg_paths.items()
                    if pair in baseline
                    and info.as_path != baseline[pair].as_path
                )
                obs.count("whatif.pairs_rerouted", rerouted)
                last_unreachable = tuple(campaign.unreachable_pairs)
                segments.append(
                    SegmentSummary(
                        start_s=t0,
                        end_s=t1,
                        requested=seg_stats.requested,
                        completed=seg_stats.completed,
                        unreachable_pairs=last_unreachable,
                        pairs_rerouted=rerouted,
                    )
                )
        finally:
            self.timeline.reset()
        dataset = Dataset(
            meta=DatasetMeta(
                name="WHATIF",
                method="traceroute",
                year=1999,
                duration_days=self.horizon_s / SECONDS_PER_DAY,
                location="North America",
                era="1999",
                description=(
                    f"what-if scenario run: {self.plan.to_spec() or 'no events'}"
                ),
            ),
            hosts=list(self.hosts),
            traceroutes=records,
            path_info=baseline,
            stats=stats,
        )
        availability = analyze_availability(dataset, self.topo)
        report = ScenarioReport(
            plan_spec=self.plan.to_spec(),
            seed=self.seed,
            n_hosts=len(self.hosts),
            horizon_s=self.horizon_s,
            segments=tuple(segments),
            permanently_disconnected=last_unreachable,
            availability=availability,
        )
        return dataset, report

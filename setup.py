"""Setup shim enabling legacy `pip install -e .` in offline environments
that lack the `wheel` package (PEP 660 editable builds need it)."""

from setuptools import setup

setup()

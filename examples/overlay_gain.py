#!/usr/bin/env python3
"""Overlay what-if: how much would Detour-style overlay routing gain?

The paper motivated the Detour project (and later RON): if alternate
paths through cooperating hosts beat the default Internet path for a
large fraction of pairs, an *overlay network* that relays traffic
through those hosts can deliver the gain today, without changing BGP.

This example builds an overlay of N hosts, then for every ordered pair
reports what a relay-capable overlay would achieve:

* latency: direct vs best relay path (and the chosen relay);
* loss: direct vs composed relay loss;
* the overlay "win rate" and mean/median improvement.

Run:
    python examples/overlay_gain.py [--hosts 20] [--scale 0.15]
"""

from __future__ import annotations

import argparse

import numpy as np

from repro import Metric, ReproSession


def main() -> None:
    parser = argparse.ArgumentParser(description=__doc__)
    parser.add_argument("--hosts", type=int, default=20, help="overlay size")
    parser.add_argument("--scale", type=float, default=0.15, help="collection scale")
    parser.add_argument("--seed", type=int, default=1999, help="master seed")
    parser.add_argument("--top", type=int, default=8, help="biggest wins to show")
    args = parser.parse_args()

    session = ReproSession(seed=args.seed, scale=args.scale, use_cache=False)
    print(f"Building measurement substrate (scale={args.scale:g}) ...")
    uw3 = session.dataset("UW3")
    if args.hosts < len(uw3.hosts):
        drop = uw3.hosts[args.hosts:]
        uw3 = uw3.without_hosts(drop)
    min_samples = max(5, int(30 * args.scale))

    rtt = session.analyze(uw3, Metric.RTT, min_samples=min_samples)
    loss = session.analyze(uw3, Metric.LOSS, min_samples=min_samples)

    improvements = rtt.improvements()
    positive = improvements[improvements > 0]
    print(f"\nOverlay of {len(uw3.hosts)} hosts, {len(rtt)} directed pairs:")
    print(f"  relay helps latency on     : {rtt.fraction_improved():.0%} of pairs")
    if positive.size:
        print(f"  mean gain where it helps   : {positive.mean():.1f} ms")
        print(f"  median gain where it helps : {np.median(positive):.1f} ms")
    print(f"  relay helps loss on        : {loss.fraction_improved():.0%} of pairs")

    # Relay utilization: which hosts carry the overlay's traffic?
    relay_counts: dict[str, int] = {}
    for comp in rtt.comparisons:
        if comp.improvement > 0:
            for via in comp.via:
                relay_counts[via] = relay_counts.get(via, 0) + 1
    busiest = sorted(relay_counts.items(), key=lambda kv: -kv[1])[:5]
    print("\nBusiest relays (pairs improved through them):")
    for host, count in busiest:
        print(f"  {host:<28} {count}")

    wins = sorted(rtt.comparisons, key=lambda c: -c.improvement)[: args.top]
    print(f"\nTop {args.top} latency wins:")
    for comp in wins:
        relay = " -> ".join(comp.via) if comp.via else "(none)"
        print(
            f"  {comp.src} -> {comp.dst}: {comp.default_value:6.0f} ms direct, "
            f"{comp.alt_value:6.0f} ms via {relay} "
            f"({comp.improvement:+.0f} ms)"
        )

    # One-hop restriction: how much of the gain survives if the overlay
    # only ever uses a single relay (the practical deployment)?
    one_hop = session.analyze(uw3, Metric.RTT, min_samples=min_samples, one_hop_only=True)
    print(
        f"\nSingle-relay overlay retains "
        f"{one_hop.fraction_improved() / max(rtt.fraction_improved(), 1e-9):.0%} "
        f"of the multi-relay win rate "
        f"({one_hop.fraction_improved():.0%} vs {rtt.fraction_improved():.0%})."
    )


if __name__ == "__main__":
    main()

#!/usr/bin/env python3
"""Quickstart: reproduce the paper's headline result on one dataset.

Builds a reduced-scale analog of the UW3 dataset (39 North American
traceroute servers, Poisson pair scheduling), runs the alternate-path
analysis for round-trip time and loss rate, and prints the Figure 1/3
headline numbers.

Run:
    python examples/quickstart.py [--scale 0.2] [--seed 1999]
"""

from __future__ import annotations

import argparse

from repro import Metric, ReproSession


def main() -> None:
    parser = argparse.ArgumentParser(description=__doc__)
    parser.add_argument(
        "--scale",
        type=float,
        default=0.2,
        help="fraction of the full 7-day collection to simulate (default 0.2)",
    )
    parser.add_argument("--seed", type=int, default=1999, help="master seed")
    args = parser.parse_args()

    session = ReproSession(seed=args.seed, scale=args.scale, use_cache=False)
    print(f"Building UW3 analog (scale={args.scale:g}, seed={args.seed}) ...")
    uw3 = session.dataset("UW3")
    row = uw3.table1_row()
    print(
        f"  {row['hosts']} hosts, {row['measurements']} traceroutes, "
        f"{row['paths_covered_pct']}% of paths covered"
    )

    # Scale the paper's 30-measurement floor with the collection length.
    min_samples = max(5, int(30 * args.scale))

    rtt = session.analyze(uw3, Metric.RTT, min_samples=min_samples)
    print(f"\nRound-trip time ({len(rtt)} pairs analyzed):")
    print(f"  alternate better than default : {rtt.fraction_improved():.0%}")
    print(f"  better by 20 ms or more       : {rtt.fraction_improved_by(20.0):.0%}")
    ratios = rtt.ratios()
    print(f"  50%+ lower latency            : {(ratios > 1.5).mean():.0%}")

    loss = session.analyze(uw3, Metric.LOSS, min_samples=min_samples)
    print(f"\nLoss rate ({len(loss)} pairs analyzed):")
    print(f"  alternate better than default : {loss.fraction_improved():.0%}")
    print(f"  better by 5% loss or more     : {loss.fraction_improved_by(0.05):.0%}")

    best = max(rtt.comparisons, key=lambda c: c.improvement)
    print(
        f"\nLargest RTT win: {best.src} -> {best.dst}: "
        f"{best.default_value:.0f} ms direct vs {best.alt_value:.0f} ms "
        f"via {' -> '.join(best.via)}"
    )
    print(
        "\nThe paper's finding: 'in 30-80% of the cases, there is an "
        "alternate path with significantly superior quality.'"
    )


if __name__ == "__main__":
    main()

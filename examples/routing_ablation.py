#!/usr/bin/env python3
"""Why do superior alternate paths exist?  Interrogate the routing policy.

Section 3 of the paper blames policy routing: BGP's valley-free export,
AS-path-length decisions, and early-exit (hot-potato) egress selection
all diverge from latency-optimal routing.  Because this reproduction
*simulates* the Internet, we can re-route the very same topology under
different policies and measure the stretch directly — something the
paper could only argue for.

Three routing regimes over identical hosts and links:

1. policy + early exit   (the modeled Internet default)
2. policy + best exit    (destination-aware egress selection)
3. optimal               (global shortest-delay paths, no policy)

Run:
    python examples/routing_ablation.py [--hosts 18] [--seed 42]
"""

from __future__ import annotations

import argparse
import itertools

import numpy as np

from repro.routing import EgressPolicy, OptimalResolver, PathResolver
from repro.topology import TopologyConfig, generate_topology, place_hosts


def stretch_stats(delays: np.ndarray, optimal: np.ndarray) -> str:
    stretch = delays / optimal
    return (
        f"mean stretch {stretch.mean():.2f}, p90 {np.percentile(stretch, 90):.2f}, "
        f"paths >1.5x optimal: {(stretch > 1.5).mean():.0%}"
    )


def main() -> None:
    parser = argparse.ArgumentParser(description=__doc__)
    parser.add_argument("--hosts", type=int, default=18, help="number of hosts")
    parser.add_argument("--seed", type=int, default=42, help="topology seed")
    parser.add_argument("--era", choices=["1995", "1999"], default="1999")
    args = parser.parse_args()

    topo = generate_topology(TopologyConfig.for_era(args.era, seed=args.seed))
    place_hosts(topo, args.hosts, seed=args.seed + 1, north_america_only=True)
    names = topo.host_names()
    pairs = list(itertools.permutations(names, 2))
    print(
        f"Topology: {len(topo.ases)} ASes, {len(topo.routers)} routers, "
        f"{len(topo.links)} links; {len(pairs)} directed host pairs"
    )

    regimes = {
        "policy + early exit": PathResolver(topo),
        "policy + best exit": PathResolver(
            topo,
            egress_policy=EgressPolicy.BEST_EXIT,
            respect_as_early_exit=False,
        ),
    }
    optimal = OptimalResolver(topo)
    opt_delay = np.array([optimal.resolve(a, b).prop_delay_ms for a, b in pairs])

    print(f"\n{'regime':<24} propagation-delay inefficiency vs optimal")
    results = {}
    for label, resolver in regimes.items():
        delays = np.array([resolver.resolve(a, b).prop_delay_ms for a, b in pairs])
        results[label] = delays
        print(f"{label:<24} {stretch_stats(delays, opt_delay)}")
    print(f"{'optimal':<24} mean stretch 1.00 (by construction)")

    early = results["policy + early exit"]
    best = results["policy + best exit"]
    healed = (early - best) > 0.5
    print(
        f"\nSwitching every AS from early-exit to best-exit egress shortens "
        f"{healed.mean():.0%} of paths (mean {np.mean((early - best)[healed]) if healed.any() else 0:.1f} ms "
        f"where it helps)."
    )

    worst = int(np.argmax(early / opt_delay))
    a, b = pairs[worst]
    path = regimes["policy + early exit"].resolve(a, b)
    opt_path = optimal.resolve(a, b)
    print(f"\nMost-inflated pair: {a} -> {b}")
    print(
        f"  policy route : {path.prop_delay_ms:.1f} ms via ASes "
        f"{' -> '.join(f'AS{x}' for x in path.as_path)}"
    )
    print(
        f"  optimal route: {opt_path.prop_delay_ms:.1f} ms via ASes "
        f"{' -> '.join(f'AS{x}' for x in opt_path.as_path)}"
    )
    print(
        "\nThis residual policy-vs-optimal gap is exactly the headroom the "
        "paper's synthetic alternate paths exploit."
    )


if __name__ == "__main__":
    main()

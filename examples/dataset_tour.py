#!/usr/bin/env python3
"""Tour of the measurement machinery: traceroute, scheduling, rate limits.

Walks through the pieces the paper's datasets were collected with:

1. a per-hop traceroute between two hosts, printed in the classic format;
2. the three scheduling laws (uniform per-server, Poisson pairs,
   simultaneous episodes) and their inter-request statistics;
3. ICMP rate limiting: a limited host's inflated inbound loss, and the
   empirical detector that flags it.

Run:
    python examples/dataset_tour.py [--seed 7]
"""

from __future__ import annotations

import argparse
import itertools
import math

import numpy as np

from repro.datasets import Dataset, DatasetMeta
from repro.measurement import (
    Campaign,
    TracerouteTool,
    detect_rate_limiters,
    poisson_episodes,
    poisson_pairs,
    round_robin_pairs,
    uniform_per_server,
)
from repro.netsim import NetworkConditions, SECONDS_PER_DAY
from repro.routing import PathResolver
from repro.topology import TopologyConfig, generate_topology, place_hosts


def show_traceroute(topo, resolver, conditions, src: str, dst: str, rng) -> None:
    from repro.topology import AddressPlan

    rt = resolver.resolve_round_trip(src, dst)
    tool = TracerouteTool(topo, conditions)
    plan = AddressPlan(topo)
    result = tool.trace(rt, t=2 * SECONDS_PER_DAY + 3600.0, rng=rng)
    print(f"traceroute from {src} to {dst} ({len(result.hops)} hops):")
    for hop in result.hops:
        samples = "  ".join(
            "*" if math.isnan(r) else f"{r:7.1f} ms" for r in hop.rtt_ms
        )
        print(f"  {hop.ttl:2d}  {plan.format_hop(hop.router_id):<56} {samples}")
    as_path = result.as_path(topo)
    print(f"AS path: {' -> '.join(f'AS{a}' for a in as_path)}")
    print(f"forward/reverse symmetric: {rt.is_symmetric}\n")


def show_schedulers(hosts: list[str]) -> None:
    day = SECONDS_PER_DAY
    uni = list(uniform_per_server(hosts, day, 900.0, seed=1))
    poi = list(poisson_pairs(hosts, day, 150.0, seed=1))
    epi = list(poisson_episodes(hosts, day, 3600.0, seed=1))
    episodes = {r.episode for r in epi}
    print("scheduling laws over one simulated day:")
    print(f"  uniform per-server (15 min): {len(uni)} requests")
    gaps = np.diff([r.t for r in poi])
    print(
        f"  Poisson pairs (150 s)      : {len(poi)} requests, "
        f"mean gap {gaps.mean():.0f}s, cv {gaps.std() / gaps.mean():.2f} (≈1 for Poisson)"
    )
    print(
        f"  episodes (1 h)             : {len(epi)} requests in "
        f"{len(episodes)} all-pairs episodes\n"
    )


def show_rate_limiting(topo, conditions, resolver, hosts: list[str]) -> None:
    limited = [h for h in hosts if topo.host(h).rate_limits_icmp]
    print(f"hosts with ICMP rate limiting (ground truth): {len(limited)}")
    campaign = Campaign(topo, conditions, hosts, resolver=resolver, seed=3)
    requests = round_robin_pairs(hosts, repetitions=6, duration_s=SECONDS_PER_DAY, seed=3)
    records, stats = campaign.run_traceroutes(requests)
    dataset = Dataset(
        meta=DatasetMeta(
            name="tour", method="traceroute", year=1999,
            duration_days=1, location="North America",
        ),
        hosts=hosts,
        traceroutes=records,
    )
    print(f"pre-scan: {stats.completed} traceroutes, "
          f"{stats.rate_limited_probes} probes suppressed by limiters")
    verdicts = detect_rate_limiters(dataset)
    flagged = [v for v in verdicts if v.flagged]
    truth = set(limited)
    hits = sum(1 for v in flagged if v.host in truth)
    print("detector verdicts (inbound vs outbound median loss):")
    for v in verdicts:
        mark = " <-- flagged" if v.flagged else ""
        truth_mark = " (true limiter)" if v.host in truth else ""
        if v.flagged or v.host in truth:
            print(
                f"  {v.host:<28} in={v.loss_toward:5.1%} out={v.loss_from:5.1%}"
                f"{mark}{truth_mark}"
            )
    print(f"detector recall: {hits}/{len(truth)}; false flags: {len(flagged) - hits}\n")


def main() -> None:
    parser = argparse.ArgumentParser(description=__doc__)
    parser.add_argument("--seed", type=int, default=7, help="topology seed")
    args = parser.parse_args()

    topo = generate_topology(TopologyConfig.for_era("1999", seed=args.seed))
    place_hosts(
        topo, 12, seed=args.seed + 1, north_america_only=True,
        rate_limit_fraction=0.25,
    )
    conditions = NetworkConditions(topo, seed=args.seed + 2)
    resolver = PathResolver(topo)
    hosts = topo.host_names()
    rng = np.random.default_rng(args.seed)

    far_pair = max(
        itertools.permutations(hosts, 2),
        key=lambda p: resolver.resolve(p[0], p[1]).prop_delay_ms,
    )
    show_traceroute(topo, resolver, conditions, far_pair[0], far_pair[1], rng)
    show_schedulers(hosts)
    show_rate_limiting(topo, conditions, resolver, hosts)


if __name__ == "__main__":
    main()

#!/usr/bin/env python3
"""Run a Detour-style overlay and measure what it captures of the oracle.

The paper's alternate-path analysis is an oracle: it looks at long-term
averages in retrospect.  The natural system it motivated — built by the
same authors as *Detour*, and later by MIT as *RON* — probes continuously
and relays flows through overlay peers when an alternate looks better.

This example runs that system over the simulated Internet and reports,
over a day of traffic:

* mean latency: direct vs overlay vs oracle;
* how often the overlay deflects, and how often deflections win;
* the share of the oracle's gain the online system captures;
* sensitivity to the probing interval (staleness) and hysteresis.

Run:
    python examples/detour_overlay.py [--hosts 14] [--flows 600]
"""

from __future__ import annotations

import argparse

from repro.netsim import NetworkConditions, SECONDS_PER_DAY
from repro.overlay import OverlayNetwork
from repro.topology import TopologyConfig, generate_topology, place_hosts


def evaluate(topo, conditions, hosts, *, probe_interval_s, hysteresis, flows, seed):
    overlay = OverlayNetwork(
        topo,
        conditions,
        hosts,
        probe_interval_s=probe_interval_s,
        hysteresis=hysteresis,
        seed=seed,
    )
    return overlay.evaluate(
        t0=1.0 * SECONDS_PER_DAY,
        duration_s=SECONDS_PER_DAY,
        n_flows=flows,
    )


def main() -> None:
    parser = argparse.ArgumentParser(description=__doc__)
    parser.add_argument("--hosts", type=int, default=14, help="overlay size")
    parser.add_argument("--flows", type=int, default=600, help="evaluation flows")
    parser.add_argument("--seed", type=int, default=3, help="simulation seed")
    args = parser.parse_args()

    topo = generate_topology(TopologyConfig.for_era("1999", seed=args.seed))
    place_hosts(
        topo, args.hosts, seed=args.seed + 1,
        north_america_only=True, rate_limit_fraction=0.0,
    )
    conditions = NetworkConditions(topo, seed=args.seed + 2)
    hosts = topo.host_names()

    print(f"Overlay of {len(hosts)} hosts; {args.flows} flows over one day.\n")
    base = evaluate(
        topo, conditions, hosts,
        probe_interval_s=120.0, hysteresis=0.1, flows=args.flows, seed=args.seed,
    )
    print("Baseline overlay (probe every 120 s, 10% hysteresis):")
    print(f"  mean RTT  direct : {base.mean_direct_rtt():7.1f} ms")
    print(f"  mean RTT  overlay: {base.mean_overlay_rtt():7.1f} ms")
    print(f"  mean RTT  oracle : {base.mean_oracle_rtt():7.1f} ms")
    print(f"  deflection rate  : {base.deflection_rate():7.1%}")
    print(f"  deflection wins  : {base.win_rate():7.1%}")
    print(f"  oracle-gain capture: {base.gain_capture():5.1%}")

    print("\nSensitivity to probing staleness (hysteresis 10%):")
    print(f"  {'probe interval':>16} {'overlay RTT':>12} {'capture':>9}")
    for interval in (30.0, 120.0, 600.0, 1800.0):
        ev = evaluate(
            topo, conditions, hosts,
            probe_interval_s=interval, hysteresis=0.1,
            flows=args.flows, seed=args.seed,
        )
        print(
            f"  {interval:>14.0f}s {ev.mean_overlay_rtt():>10.1f}ms "
            f"{ev.gain_capture():>8.1%}"
        )

    print("\nSensitivity to hysteresis (probe every 120 s):")
    print(f"  {'hysteresis':>12} {'deflect':>9} {'wins':>7} {'capture':>9}")
    for hysteresis in (0.0, 0.1, 0.3, 0.5):
        ev = evaluate(
            topo, conditions, hosts,
            probe_interval_s=120.0, hysteresis=hysteresis,
            flows=args.flows, seed=args.seed,
        )
        print(
            f"  {hysteresis:>12.1f} {ev.deflection_rate():>8.1%} "
            f"{ev.win_rate():>6.1%} {ev.gain_capture():>8.1%}"
        )

    print(
        "\nReading: fresher probes and moderate hysteresis capture most of "
        "the oracle gain;\nvery stale probes deflect on noise and give the "
        "gain back — the engineering\ntrade-off Detour and RON had to solve."
    )


if __name__ == "__main__":
    main()

"""Ablation: policy routing vs globally optimal routing.

'Theoretically, if the Internet used "shortest" path routing ... there
would be no room to find alternate paths with better performance' (paper
section 3).  Using the resolver's true propagation delays (no measurement
noise), one-hop relayed paths must essentially never beat optimal routes
(triangle inequality of a shortest-path metric), while under policy
routing a large fraction of pairs are improvable.
"""


import numpy as np
from conftest import run_once

from repro.routing import OptimalResolver, PathResolver
from repro.topology import TopologyConfig, generate_topology, place_hosts


def _one_hop_violation_rate(resolver, names) -> float:
    """Fraction of ordered pairs with a shorter one-hop relayed path,
    measured on true (noise-free) propagation delays."""
    n = len(names)
    delay = np.full((n, n), np.inf)
    for i, a in enumerate(names):
        for j, b in enumerate(names):
            if i != j:
                delay[i, j] = resolver.resolve_round_trip(a, b).rtt_prop_ms
    violations = 0
    total = 0
    for i in range(n):
        for j in range(n):
            if i == j:
                continue
            total += 1
            best_relay = min(
                delay[i, k] + delay[k, j]
                for k in range(n)
                if k not in (i, j)
            )
            if best_relay < delay[i, j] - 1e-6:
                violations += 1
    return violations / total


def test_optimal_routing_shrinks_the_effect(benchmark):
    topo = generate_topology(TopologyConfig.for_era("1999", seed=21))
    place_hosts(topo, 14, seed=22, north_america_only=True, rate_limit_fraction=0.0)
    names = topo.host_names()

    def run():
        policy = _one_hop_violation_rate(PathResolver(topo), names)
        optimal = _one_hop_violation_rate(OptimalResolver(topo), names)
        return policy, optimal

    policy, optimal = run_once(benchmark, run)
    print(
        f"\npropagation triangle violations: policy={policy:.2f} optimal={optimal:.2f}"
    )
    # Under policy routing, a large fraction of pairs have shorter
    # relayed paths; under optimal routing the metric's triangle
    # inequality leaves (essentially) none.
    assert policy > 0.15
    assert optimal < 0.02
    assert optimal < policy / 5

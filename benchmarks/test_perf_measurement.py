"""Performance benchmarks for the measurement pipeline.

These cover the probe/measurement substrate end to end: raw sampler
probe throughput, the collector's traceroute and transfer loops (the
dataset builders' hot path), episode collection over flapping routes,
and the ping tool.  The committed baseline (``BENCH_measurement.json``)
holds the pre-vectorization numbers, so ``repro bench --compare
--output BENCH_measurement.json`` reports the measurement fast path's
speedup; see docs/PERFORMANCE.md.
"""

import itertools

import numpy as np
import pytest

from repro.measurement import Campaign, PingTool, poisson_episodes, poisson_pairs
from repro.netsim import NetworkConditions, PathSampler, SECONDS_PER_DAY
from repro.routing import PathResolver
from repro.routing.dynamics import RouteFlapModel
from repro.topology import TopologyConfig, generate_topology, place_hosts


@pytest.fixture(scope="module")
def env():
    topo = generate_topology(TopologyConfig.for_era("1999", seed=41))
    place_hosts(topo, 20, seed=42, north_america_only=True, rate_limit_fraction=0.2)
    conditions = NetworkConditions(topo, seed=43)
    resolver = PathResolver(topo)
    return topo, conditions, resolver


@pytest.fixture(scope="module")
def sampler(env):
    topo, conditions, resolver = env
    names = topo.host_names()
    pairs = list(itertools.permutations(names, 2))
    return PathSampler(
        conditions, [resolver.resolve_round_trip(a, b) for a, b in pairs]
    )


def test_perf_probe_throughput(benchmark, sampler):
    """1000 all-pairs probe rounds: the online prober's steady state."""
    rng = np.random.default_rng(7)

    def probe_thousand():
        total = 0
        for i in range(1000):
            batch = sampler.probe(SECONDS_PER_DAY + i * 17.0, rng)
            total += int(batch.lost.sum())
        return total

    benchmark(probe_thousand)


def test_perf_probe_batched(benchmark, sampler):
    """One probe_batch call covering 50 all-pairs rounds across buckets.

    Exercises the episode-in-one-pass API (no per-round python); not in
    the pre-vectorization baseline, so comparisons simply skip it.
    """
    n = len(sampler)
    ts = np.repeat(SECONDS_PER_DAY + np.arange(50) * 17.0, n)
    idx = np.tile(np.arange(n), 50)

    def probe_batched():
        rng = np.random.default_rng(7)
        rtts = sampler.probe_batch(ts, rng, indices=idx)
        return int(np.isnan(rtts).sum())

    benchmark(probe_batched)


def test_perf_collector_traceroutes(benchmark, env):
    """Half a simulated day of Poisson traceroutes through the campaign."""
    topo, conditions, resolver = env
    hosts = topo.host_names()
    campaign = Campaign(
        topo, conditions, hosts, resolver=resolver, seed=44,
        control_failure_prob=0.02,
    )
    requests = list(poisson_pairs(hosts, SECONDS_PER_DAY / 2, 30.0, seed=45))

    def run():
        records, stats = campaign.run_traceroutes(requests)
        return len(records)

    count = benchmark(run)
    assert count > 0


def test_perf_collector_transfers(benchmark, env):
    """Half a simulated day of npd-style TCP transfers."""
    topo, conditions, resolver = env
    hosts = topo.host_names()
    campaign = Campaign(
        topo, conditions, hosts, resolver=resolver, seed=46,
        control_failure_prob=0.02,
    )
    requests = list(poisson_pairs(hosts, SECONDS_PER_DAY / 2, 30.0, seed=47))

    def run():
        records, stats = campaign.run_transfers(requests)
        return len(records)

    count = benchmark(run)
    assert count > 0


def test_perf_collector_episodes_flap(benchmark, env):
    """UW4-A-style all-pairs episodes over flapping routes."""
    topo, conditions, resolver = env
    hosts = topo.host_names()[:12]
    campaign = Campaign(
        topo, conditions, hosts, resolver=resolver, seed=48,
        control_failure_prob=0.02,
        flap_model=RouteFlapModel(flappy_fraction=0.3, flap_probability=0.1, seed=49),
    )
    requests = list(
        poisson_episodes(hosts, SECONDS_PER_DAY / 2, 3600.0, seed=50)
    )

    def run():
        records, stats = campaign.run_traceroutes(requests)
        return len(records)

    count = benchmark(run)
    assert count > 0


def test_perf_ping(benchmark, env):
    """Repeated ping runs along one resolved path (the overlay's probe)."""
    topo, conditions, resolver = env
    names = topo.host_names()
    round_trip = resolver.resolve_round_trip(names[0], names[1])
    tool = PingTool(conditions)

    def run():
        rng = np.random.default_rng(51)
        received = 0
        for k in range(40):
            result = tool.ping(
                round_trip, t=SECONDS_PER_DAY + k * 600.0, rng=rng, count=10
            )
            received += result.received
        return received

    received = benchmark(run)
    assert received > 0

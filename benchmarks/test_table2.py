"""Benchmark: regenerate Table 2 (RTT t-test classification)."""

from conftest import run_once

from repro.experiments import table2


def test_table2(benchmark, suite, min_samples):
    result = run_once(benchmark, table2, suite, min_samples=min_samples)
    print("\n" + result.text)
    rows = {row[0]: row[1:] for row in result.rows}
    better = [int(v.rstrip("%")) for v in rows["Better"]]
    indet = [int(v.rstrip("%")) for v in rows["Indeterminate"]]
    worse = [int(v.rstrip("%")) for v in rows["Worse"]]
    # Paper shape: every class populated in every dataset; no class
    # explains everything.
    assert all(b > 0 for b in better)
    assert all(i > 5 for i in indet)
    assert all(w < 80 for w in worse)

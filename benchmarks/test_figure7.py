"""Benchmark: regenerate Figure 7 (RTT CDF with 95% CIs, UW3)."""

import numpy as np
from conftest import run_once

from repro.experiments import figure7


def test_figure7(benchmark, suite, min_samples):
    fig = run_once(benchmark, figure7, suite, min_samples=min_samples)
    print("\n" + fig.text)
    # Paper: 'most paths have relatively tight error bounds' - the median
    # CI half-width is small relative to the improvement spread.
    halfwidths = (fig.data["ci_high"] - fig.data["ci_low"]) / 2.0
    series = fig.series[0]
    spread = series.value_at_fraction(0.9) - series.value_at_fraction(0.1)
    assert np.median(halfwidths) < spread

"""Robustness: the headline result across independent seeds.

The paper argues its finding is 'largely independent of the precise set
of hosts measured' (section 8).  Here the UW3 experiment is regenerated
from three unrelated seeds — different topology, hosts, congestion, and
schedules — and the headline band must hold for each.
"""

from conftest import run_once

from repro.core import Metric, analyze
from repro.datasets import BuildConfig, build_uw3

SEEDS = (7, 1999, 31337)
SCALE = 0.15
MIN_SAMPLES = 5


def test_headline_holds_across_seeds(benchmark):
    def run():
        fractions = {}
        for seed in SEEDS:
            uw3, _env = build_uw3(BuildConfig(seed=seed, scale=SCALE))
            rtt = analyze(uw3, Metric.RTT, min_samples=MIN_SAMPLES)
            loss = analyze(uw3, Metric.LOSS, min_samples=MIN_SAMPLES)
            fractions[seed] = (rtt.fraction_improved(), loss.fraction_improved())
        return fractions

    fractions = run_once(benchmark, run)
    print("\nseed  | RTT improved | loss improved")
    for seed, (rtt, loss) in fractions.items():
        print(f"{seed:>5} | {rtt:11.2f} | {loss:12.2f}")
    for seed, (rtt, loss) in fractions.items():
        assert 0.25 <= rtt <= 0.65, f"seed {seed}: RTT {rtt:.2f} out of band"
        assert 0.45 <= loss <= 0.98, f"seed {seed}: loss {loss:.2f} out of band"

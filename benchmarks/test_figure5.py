"""Benchmark: regenerate Figure 5 (relative bandwidth CDFs)."""

import numpy as np
from conftest import run_once

from repro.experiments import figure5


def test_figure5(benchmark, suite):
    fig = run_once(benchmark, figure5, suite)
    print("\n" + fig.text)
    # Paper: for at least 10-20% of paths the potential improvement is at
    # least a factor of three.
    for series in fig.series:
        assert np.mean(series.x > 3.0) >= 0.05, series.label
    # The N2 vs N2-NA difference largely disappears in ratio space.
    by_label = {s.label: s for s in fig.series}
    gap = abs(
        by_label["N2 pessimistic"].fraction_above(1.0)
        - by_label["N2-NA pessimistic"].fraction_above(1.0)
    )
    assert gap < 0.3

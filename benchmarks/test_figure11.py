"""Benchmark: regenerate Figure 11 (long-term average vs simultaneous)."""

from conftest import run_once

from repro.experiments import figure11


def test_figure11(benchmark, suite, min_samples):
    fig = run_once(benchmark, figure11, suite, min_samples=min_samples)
    print("\n" + fig.text)
    by_label = {s.label: s for s in fig.series}
    unavg = by_label["unaveraged UW4-A"]
    pair_avg = by_label["pair-averaged UW4-A"]
    # Paper: the unaveraged curve has 'a much broader tail in both
    # directions' than the pair-averaged one.
    spread_raw = unavg.value_at_fraction(0.95) - unavg.value_at_fraction(0.05)
    spread_avg = pair_avg.value_at_fraction(0.95) - pair_avg.value_at_fraction(0.05)
    assert spread_raw > spread_avg
    # And simultaneous measurement finds good alternates about as often
    # as (or more often than) the long-term average does.
    assert pair_avg.fraction_above(0.0) >= by_label["UW4-B"].fraction_above(0.0) - 0.15

"""Benchmark: regenerate Figure 12 (greedy top-ten host removal)."""

from conftest import run_once

from repro.experiments import figure12


def test_figure12(benchmark, suite, min_samples):
    fig = run_once(benchmark, figure12, suite, min_samples=min_samples, k=10)
    print("\n" + fig.text)
    baseline = fig.data["baseline_fraction"]
    pruned = fig.data["pruned_fraction"]
    # Paper: 'the top ten hosts are not the source of a disproportionate
    # number of the superior alternate paths' - removing them must not
    # collapse the effect.
    assert pruned is not None
    assert pruned > baseline * 0.3

"""Performance benchmarks for the core primitives.

Unlike the table/figure benches (one-shot reproductions), these measure
steady-state throughput of the library's hot paths with multiple rounds.
"""

import itertools

import numpy as np
import pytest

from repro.core import AlternatePathFinder, Metric, build_graph
from repro.measurement import Campaign, poisson_pairs
from repro.netsim import NetworkConditions, PathSampler, SECONDS_PER_DAY
from repro.routing import BGPTable, PathResolver
from repro.topology import TopologyConfig, generate_topology, place_hosts


@pytest.fixture(scope="module")
def env():
    topo = generate_topology(TopologyConfig.for_era("1999", seed=41))
    place_hosts(topo, 20, seed=42, north_america_only=True, rate_limit_fraction=0.0)
    conditions = NetworkConditions(topo, seed=43)
    return topo, conditions


def test_perf_bgp_convergence(benchmark, env):
    topo, _ = env

    def converge():
        table = BGPTable(topo)
        dests = sorted(topo.ases)[:20]
        return sum(table.route(1, d) is not None for d in dests if d != 1)

    count = benchmark(converge)
    assert count > 0


def test_perf_path_resolution(benchmark, env):
    topo, _ = env
    names = topo.host_names()[:10]
    pairs = list(itertools.permutations(names, 2))

    def resolve_all():
        resolver = PathResolver(topo)
        return [resolver.resolve_round_trip(a, b) for a, b in pairs]

    paths = benchmark(resolve_all)
    assert len(paths) == len(pairs)


def test_perf_probe_throughput(benchmark, env):
    topo, conditions = env
    resolver = PathResolver(topo)
    names = topo.host_names()
    pairs = list(itertools.permutations(names, 2))
    sampler = PathSampler(
        conditions, [resolver.resolve_round_trip(a, b) for a, b in pairs]
    )
    rng = np.random.default_rng(7)

    def probe_thousand():
        total = 0
        for i in range(1000):
            batch = sampler.probe(SECONDS_PER_DAY + i * 17.0, rng)
            total += int(batch.lost.sum())
        return total

    benchmark(probe_thousand)


def test_perf_alternate_search(benchmark, env):
    topo, conditions = env
    hosts = topo.host_names()
    campaign = Campaign(topo, conditions, hosts, seed=44)
    requests = poisson_pairs(hosts, SECONDS_PER_DAY, 60.0, seed=45)
    records, _ = campaign.run_traceroutes(requests)
    from repro.datasets import Dataset, DatasetMeta

    dataset = Dataset(
        meta=DatasetMeta(
            name="perf", method="traceroute", year=1999,
            duration_days=1, location="North America",
        ),
        hosts=hosts,
        traceroutes=records,
    )
    graph = build_graph(dataset, Metric.RTT, min_samples=3)

    def search():
        return AlternatePathFinder(graph).best_all()

    alternates = benchmark(search)
    assert alternates


def test_perf_direct_edge_rerun_path(benchmark):
    """Worst case for the exclusion re-run: a complete graph whose direct
    edges are almost always the unconstrained shortest path, forcing one
    excluded-edge Dijkstra per pair (exercises the patched-CSR path that
    replaced the per-pair dense rebuild)."""
    from repro.core.graph import EdgeData, MetricGraph
    from repro.core.stats import SampleStats

    rng = np.random.default_rng(9)
    hosts = [f"h{i}" for i in range(40)]
    graph = MetricGraph(Metric.RTT, hosts)
    for a in hosts:
        for b in hosts:
            if a == b:
                continue
            value = float(rng.uniform(1.0, 2.0))
            graph.add_edge(
                (a, b),
                EdgeData(value=value, stats=SampleStats(n=9, mean=value, var=0.1)),
            )

    def search():
        return AlternatePathFinder(graph).best_all()

    alternates = benchmark(search)
    assert len(alternates) == len(hosts) * (len(hosts) - 1)


@pytest.fixture(scope="module")
def scenario_env():
    """A topology of its own (the timeline mutates AS structure)."""
    from repro.scenario import ScenarioPlan

    topo = generate_topology(TopologyConfig.for_era("1999", seed=41))
    al = topo.as_links[0]
    plan = ScenarioPlan.parse(f"link-down:{al.a}-{al.b}:at=300:for=300")
    return topo, plan


def _failure_cycle(topo, plan, mode):
    """One scenario round: warm tables, fail the link, reconverge, heal."""
    from repro.scenario import ScenarioTimeline

    timeline = ScenarioTimeline(topo, plan, reconverge=mode)
    BGPTable(topo).converge_all()
    timeline.advance_to(300.0)
    BGPTable(topo).converge_all()
    n = sum(len(t) for t in topo.routing_cache("bgp")["gao-rexford"].values())
    timeline.reset()
    return n


def test_perf_scenario_reconverge(benchmark, scenario_env):
    """Selective reconvergence: unaffected destinations are salvaged."""
    topo, plan = scenario_env
    routes = benchmark(lambda: _failure_cycle(topo, plan, "affected"))
    assert routes > 0


def test_perf_scenario_reconverge_full(benchmark, scenario_env):
    """Pre-optimization oracle: every destination reconverges."""
    topo, plan = scenario_env
    routes = benchmark(lambda: _failure_cycle(topo, plan, "full"))
    assert routes > 0

"""Benchmark: regenerate Figure 4 (bandwidth improvement CDFs)."""

from conftest import run_once

from repro.experiments import figure4


def test_figure4(benchmark, suite):
    fig = run_once(benchmark, figure4, suite)
    print("\n" + fig.text)
    # Paper: 70-80% of paths have alternates with improved bandwidth;
    # optimistic and pessimistic bound each other tightly.
    for ds in ("N2", "N2-NA"):
        pes = fig.data[f"{ds} pessimistic_fraction_improved"]
        opt = fig.data[f"{ds} optimistic_fraction_improved"]
        assert 0.4 <= pes <= 0.95, f"{ds} pessimistic: {pes:.2f}"
        assert pes <= opt <= pes + 0.3

"""Ablation: spatial congestion structure at exchange points.

Section 6.3 shows alternate paths help most at peak hours — when
congestion *varies* most across the network.  This ablation isolates the
spatial side of that mechanism: raising every exchange's utilization by a
uniform amount (``exchange_heat``) pushes the hot exchanges into
saturation everywhere, and because synthetic alternates must cross
*additional* exchanges to relay through a host, uniformly saturated
exchanges leave them nothing to route around.  The improvable fraction
therefore *falls* as congestion becomes spatially uniform — evidence that
the paper's effect is driven by congestion heterogeneity, not by load per
se.
"""

from conftest import run_once

from repro.core import Metric, analyze
from repro.datasets import Dataset, DatasetMeta
from repro.measurement import Campaign, poisson_pairs
from repro.netsim import NetworkConditions, SECONDS_PER_DAY
from repro.routing import PathResolver
from repro.topology import TopologyConfig, generate_topology, place_hosts


def _fraction_improved(exchange_heat: float) -> float:
    topo = generate_topology(
        TopologyConfig.for_era("1999", seed=31, exchange_heat=exchange_heat)
    )
    place_hosts(topo, 14, seed=32, north_america_only=True, rate_limit_fraction=0.0)
    conditions = NetworkConditions(topo, seed=33)
    hosts = topo.host_names()
    campaign = Campaign(
        topo, conditions, hosts, resolver=PathResolver(topo), seed=34
    )
    requests = poisson_pairs(hosts, 2 * SECONDS_PER_DAY, 45.0, seed=35)
    records, _ = campaign.run_traceroutes(requests)
    dataset = Dataset(
        meta=DatasetMeta(
            name=f"heat={exchange_heat}", method="traceroute", year=1999,
            duration_days=2, location="North America",
        ),
        hosts=hosts,
        traceroutes=records,
    )
    return analyze(dataset, Metric.LOSS, min_samples=5).fraction_improved()


def test_uniform_saturation_removes_the_advantage(benchmark):
    def run():
        return _fraction_improved(0.0), _fraction_improved(0.25)

    heterogeneous, saturated = run_once(benchmark, run)
    print(
        f"\nloss-improvable pairs: heterogeneous={heterogeneous:.2f} "
        f"uniformly-saturated={saturated:.2f}"
    )
    # Both regimes still show the paper's effect...
    assert heterogeneous > 0.3
    assert saturated > 0.2
    # ...but flattening the congestion landscape costs the alternates
    # their routing-around headroom.
    assert saturated <= heterogeneous

"""Benchmark: regenerate Table 3 (loss t-test classification)."""

from conftest import run_once

from repro.experiments import table3


def test_table3(benchmark, suite, min_samples):
    result = run_once(benchmark, table3, suite, min_samples=min_samples)
    print("\n" + result.text)
    rows = {row[0]: row[1:] for row in result.rows}
    better = [int(v.rstrip("%")) for v in rows["Better"]]
    worse = [int(v.rstrip("%")) for v in rows["Worse"]]
    # Paper shape: alternates selected for loss are rarely *significantly*
    # worse, and a solid fraction is significantly better.
    assert all(w <= 15 for w in worse)
    assert any(b >= 10 for b in better)
    assert "Zero" in rows

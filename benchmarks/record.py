"""Record the routing perf baseline (BENCH_routing.json).

Thin wrapper kept next to the benchmarks; the implementation lives in
:mod:`repro.experiments.bench` and is also reachable as ``repro bench``.

Usage::

    PYTHONPATH=src python benchmarks/record.py            # refresh baseline
    PYTHONPATH=src python benchmarks/record.py --compare  # check current tree
"""

from __future__ import annotations

import sys

from repro.experiments.bench import main

if __name__ == "__main__":
    sys.exit(main())

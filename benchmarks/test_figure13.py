"""Benchmark: regenerate Figure 13 (normalized improvement contribution)."""

from conftest import run_once

from repro.experiments import figure13


def test_figure13(benchmark, suite, min_samples):
    fig = run_once(benchmark, figure13, suite, min_samples=min_samples)
    print("\n" + fig.text)
    # Paper: 'the distribution lacks the heavy tail that would indicate
    # the existence of a few hosts with abnormally large contributions'.
    assert fig.data["tail_heaviness"] < 0.6

"""Benchmark: regenerate Figure 14 (AS popularity scatter)."""

from conftest import run_once

from repro.experiments import figure14


def test_figure14(benchmark, suite, min_samples):
    fig = run_once(benchmark, figure14, suite, min_samples=min_samples)
    print("\n" + fig.text)
    # Paper: no significant set of ASes is substantially more represented
    # in either population - the two counts correlate strongly.
    assert fig.data["correlation"] > 0.4
    assert len(fig.data["points"]) > 10

"""Benchmark: regenerate Figure 8 (loss CDF with 95% CIs, UW3)."""

import numpy as np
from conftest import run_once

from repro.experiments import figure8


def test_figure8(benchmark, suite, min_samples):
    fig = run_once(benchmark, figure8, suite, min_samples=min_samples)
    print("\n" + fig.text)
    # Paper: loss CIs are wider (binary samples -> large deviation); the
    # relative uncertainty exceeds that of the RTT figure.
    halfwidths = (fig.data["ci_high"] - fig.data["ci_low"]) / 2.0
    assert np.median(halfwidths) > 0.0

"""Ablation: early-exit (hot potato) vs destination-aware egress.

The paper (section 3) names early-exit routing as a common source of path
inefficiency.  Here the same topology is routed under both egress
policies and compared against the policy-free optimum.
"""

import itertools

import numpy as np
from conftest import run_once

from repro.routing import EgressPolicy, OptimalResolver, PathResolver
from repro.topology import TopologyConfig, generate_topology, place_hosts


def _stretches(topo, resolver, optimal, pairs):
    return np.array(
        [
            resolver.resolve(a, b).prop_delay_ms / optimal.resolve(a, b).prop_delay_ms
            for a, b in pairs
        ]
    )


def test_early_exit_inflates_paths(benchmark):
    topo = generate_topology(TopologyConfig.for_era("1999", seed=11))
    place_hosts(topo, 16, seed=12, north_america_only=True)
    names = topo.host_names()
    pairs = list(itertools.permutations(names, 2))
    optimal = OptimalResolver(topo)

    def run():
        early = PathResolver(topo)
        best = PathResolver(
            topo,
            egress_policy=EgressPolicy.BEST_EXIT,
            respect_as_early_exit=False,
        )
        return (
            _stretches(topo, early, optimal, pairs),
            _stretches(topo, best, optimal, pairs),
        )

    early_stretch, best_stretch = run_once(benchmark, run)
    print(
        f"\nearly-exit mean stretch {early_stretch.mean():.3f}  "
        f"best-exit mean stretch {best_stretch.mean():.3f}"
    )
    # Destination-aware egress shortens paths on average, and every path
    # is at least as good as optimal predicts.
    assert best_stretch.mean() <= early_stretch.mean()
    assert np.all(early_stretch >= 1.0 - 1e-9)
    # Early exit leaves real headroom: a meaningful share of paths are
    # >10% longer than optimal.
    assert np.mean(early_stretch > 1.1) > 0.2

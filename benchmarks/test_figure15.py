"""Benchmark: regenerate Figure 15 (propagation vs mean-RTT CDFs)."""

from conftest import run_once

from repro.experiments import figure15


def test_figure15(benchmark, suite, min_samples):
    fig = run_once(benchmark, figure15, suite, min_samples=min_samples)
    print("\n" + fig.text)
    prop_frac = fig.data["prop_fraction_improved"]
    # Paper: 'superior alternate paths still exist for 50% of the paths'
    # under propagation delay alone.
    assert 0.3 <= prop_frac <= 0.7
    # And the magnitudes are cut substantially vs mean RTT.
    by_label = {s.label: s for s in fig.series}
    spread_prop = (
        by_label["propagation delay"].value_at_fraction(0.9)
        - by_label["propagation delay"].value_at_fraction(0.1)
    )
    spread_rtt = (
        by_label["mean round-trip"].value_at_fraction(0.9)
        - by_label["mean round-trip"].value_at_fraction(0.1)
    )
    assert spread_prop < spread_rtt

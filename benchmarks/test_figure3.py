"""Benchmark: regenerate Figure 3 (loss-rate improvement CDFs)."""

from conftest import run_once

from repro.experiments import figure3


def test_figure3(benchmark, suite, min_samples):
    fig = run_once(benchmark, figure3, suite, min_samples=min_samples)
    print("\n" + fig.text)
    # Paper: 75-85% of paths have lower-loss alternates (wide tolerance
    # at reduced scale); a smaller fraction improves by >= 5% loss.
    for series in fig.series:
        frac = series.fraction_above(0.0)
        assert 0.35 <= frac <= 0.98, f"{series.label}: {frac:.2f}"
        assert series.fraction_above(0.05) < frac

"""Benchmark: regenerate Figure 2 (relative RTT CDFs)."""

import numpy as np
from conftest import run_once

from repro.experiments import figure2


def test_figure2(benchmark, suite, min_samples):
    fig = run_once(benchmark, figure2, suite, min_samples=min_samples)
    print("\n" + fig.text)
    # Paper: for roughly 10% of paths the best alternate has 50% better
    # latency (ratio > 1.5); and the NA-vs-world imbalance of Figure 1
    # largely disappears in ratio space.
    for series in fig.series:
        assert np.mean(series.x > 1.5) >= 0.02, series.label
    by_label = {s.label: s for s in fig.series}
    gap = abs(
        by_label["D2"].fraction_above(1.0) - by_label["D2-NA"].fraction_above(1.0)
    )
    assert gap < 0.25

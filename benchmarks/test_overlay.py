"""Benchmark: the Detour-style overlay extension.

Measures how much of the paper's oracle alternate-path gain an online
overlay (periodic probing, EWMA estimates, hysteresis) captures.
"""

from conftest import run_once

from repro.netsim import NetworkConditions, SECONDS_PER_DAY
from repro.overlay import OverlayNetwork
from repro.topology import TopologyConfig, generate_topology, place_hosts


def test_overlay_gain_capture(benchmark):
    topo = generate_topology(TopologyConfig.for_era("1999", seed=51))
    place_hosts(topo, 15, seed=52, north_america_only=True, rate_limit_fraction=0.0)
    conditions = NetworkConditions(topo, seed=53)

    def run():
        overlay = OverlayNetwork(
            topo, conditions, topo.host_names(),
            probe_interval_s=120.0, hysteresis=0.1, seed=54,
        )
        return overlay.evaluate(
            t0=SECONDS_PER_DAY, duration_s=SECONDS_PER_DAY, n_flows=500
        )

    evaluation = run_once(benchmark, run)
    print(
        f"\ndirect {evaluation.mean_direct_rtt():.1f}ms  "
        f"overlay {evaluation.mean_overlay_rtt():.1f}ms  "
        f"oracle {evaluation.mean_oracle_rtt():.1f}ms  "
        f"deflect {evaluation.deflection_rate():.0%}  "
        f"wins {evaluation.win_rate():.0%}  "
        f"capture {evaluation.gain_capture():.0%}"
    )
    assert evaluation.mean_overlay_rtt() < evaluation.mean_direct_rtt()
    assert evaluation.gain_capture() > 0.3
    assert evaluation.win_rate() > 0.5

"""Benchmark: regenerate Figure 9 (RTT improvement by time of day)."""

from conftest import bench_scale, run_once

from repro.experiments import figure9


def test_figure9(benchmark, suite):
    fig = run_once(benchmark, figure9, suite, min_samples=3)
    print("\n" + fig.text)
    fractions = {
        label.removesuffix("_fraction_improved"): value
        for label, value in fig.data.items()
        if label.endswith("_fraction_improved")
    }
    populated = {k: v for k, v in fractions.items() if v > 0}
    # Paper: 'the overall effect occurs regardless of the time of day'.
    assert populated
    if bench_scale() >= 0.99:
        # Full scale covers the whole week: peak working hours must show
        # at least as much benefit as the weekend.
        assert fractions["0600-1200"] >= fractions["weekend"] - 0.05

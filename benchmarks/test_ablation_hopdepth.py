"""Ablation: marginal value of deeper alternate paths.

The paper restricts several analyses to one-hop alternates for
tractability; this bench quantifies what that costs by sweeping the hop
bound on the UW3 RTT graph.
"""

from conftest import run_once

from repro.core import Metric, build_graph
from repro.core.hopdepth import depth_sweep


def test_depth_sweep(benchmark, suite, min_samples):
    graph = build_graph(suite["UW3"], Metric.RTT, min_samples=min_samples)

    def run():
        return depth_sweep(graph, depths=(2, 3, 4, 6))

    rows = run_once(benchmark, run)
    print("\nmax hops | pairs | improved | mean improvement (ms)")
    for r in rows:
        print(
            f"{r.max_hops:8d} | {r.n_pairs:5d} | {r.fraction_improved:8.2%} | "
            f"{r.mean_improvement:+.1f}"
        )
    fractions = {r.max_hops: r.fraction_improved for r in rows}
    # One intermediate host captures most of the effect; depth adds
    # diminishing returns (the paper's tractability restriction is cheap).
    assert fractions[2] > 0.2
    assert fractions[6] >= fractions[2]
    assert fractions[6] - fractions[2] < 0.25

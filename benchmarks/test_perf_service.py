"""Performance benchmarks for the online Detour service.

These track the service's two costs separately: standing up a deployment
(topology + BGP convergence + candidate discovery, paid once) and the
steady-state event loop (probe rounds, transfers, request serving — the
throughput that matters for an online path-selection service).  The
committed baseline (``BENCH_service.json``) is recorded with ``repro
bench --output BENCH_service.json --bench-file
benchmarks/test_perf_service.py``; CI's perf-smoke job compares against
it.  The headline number is queries/sec in the request-serving loop.
"""

import pytest

from repro.service import DetourService, evaluate_strategies

from conftest import bench_seed, run_once


@pytest.fixture(scope="module")
def service():
    """A mid-sized deployment: 12 hosts, 6 pairs, 4 congestion buckets."""
    return DetourService(
        seed=bench_seed(),
        n_hosts=12,
        n_pairs=6,
        duration_s=1200.0,
        mean_request_interval_s=10.0,
    )


def test_perf_service_construct(benchmark):
    """Deployment stand-up: topology, convergence, candidate discovery."""

    def construct():
        svc = DetourService(
            seed=bench_seed(), n_hosts=10, n_pairs=4, duration_s=600.0
        )
        return len(svc.candidates)

    assert run_once(benchmark, construct) == 4


def test_perf_service_event_loop(benchmark, service):
    """One full lowest-latency run: probes, transfers, request serving.

    The run's queries/sec is the service's headline throughput; the
    benchmark median tracks its inverse at a fixed request schedule.
    """
    result = run_once(benchmark, service.run, "lowest-latency")
    assert len(result.records) > 100
    assert result.queries_per_second > 0.0


def test_perf_service_evaluate_all(benchmark, service):
    """The full four-strategy comparison the CLI's `repro serve` runs."""
    report = run_once(benchmark, evaluate_strategies, service)
    assert len(report.scores) == 4

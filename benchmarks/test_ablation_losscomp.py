"""Ablation: loss-composition rules for synthetic bandwidth.

The paper brackets the truth between 'optimistic' (max) and 'pessimistic'
(independence) compositions; the SUM rule is an off-paper upper bound on
composed loss, included as a sanity check.
"""

from conftest import run_once

from repro.core import LossComposition, analyze_bandwidth


def test_loss_composition_ordering(benchmark, suite):
    n2 = suite["N2"]

    def run():
        return {
            comp: analyze_bandwidth(n2, comp)
            for comp in LossComposition
        }

    results = run_once(benchmark, run)
    fractions = {
        comp.value: results[comp].fraction_improved() for comp in LossComposition
    }
    print(f"\nfraction improved by composition: {fractions}")
    # More pessimistic loss composition -> lower composed bandwidth ->
    # fewer improved pairs.
    assert (
        fractions["optimistic"]
        >= fractions["pessimistic"]
        >= fractions["sum"]
    )
    # The paper's two curves bracket tightly.
    assert fractions["optimistic"] - fractions["pessimistic"] < 0.3

"""Benchmark: regenerate Table 1 (dataset characteristics)."""

from conftest import run_once

from repro.experiments import table1


def test_table1(benchmark, suite):
    result = run_once(benchmark, table1, suite)
    print("\n" + result.text)
    names = [row[0] for row in result.rows]
    assert names == ["D2-NA", "D2", "N2-NA", "N2", "UW1", "UW3", "UW4-A", "UW4-B"]
    by_name = {row[0]: row for row in result.rows}
    # Host counts are structural and must match the paper exactly.
    paper_hosts = {
        "D2": 33, "N2": 31, "UW1": 36, "UW3": 39, "UW4-A": 15, "UW4-B": 15,
    }
    for name, hosts in paper_hosts.items():
        assert by_name[name][5] == hosts
    # UW4 covers 100% of paths; the others sit in the 80s-90s like Table 1.
    assert by_name["UW4-A"][7] == 100
    assert 80 <= by_name["UW3"][7] <= 95

"""Performance benchmarks for the columnar topology/routing substrate.

Dual-baseline convention (see docs/PERFORMANCE.md §"The scale
substrate"): the object backend cannot run the columnar workloads at
all, so this suite records the *object* numbers at a scale both
backends handle (generation at paper scale, convergence over a fixed
destination subset at 1k AS) next to the columnar numbers at 10k AS
(generation, blocked convergence, streamed summary build).  The
committed baseline (``BENCH_topology.json``) is recorded with ``repro
bench --output BENCH_topology.json --bench-file
benchmarks/test_perf_topology.py``; CI's perf-smoke job compares
against it to guard the fast path against regression.  Cross-backend
speedup claims cite the shared-scale convergence pair.
"""

import pytest

from repro.datasets.stream import build_route_summaries
from repro.routing.bgp import BGPTable
from repro.routing.columnar import converge_all
from repro.topology import TopologyConfig, generate_topology
from repro.topology.scale import generate_topology_arrays, resolve_preset

from conftest import bench_seed, run_once

#: Destinations converged by the cross-backend pair (same ASNs both ways).
N_CONVERGE_DESTS = 16


@pytest.fixture(scope="module")
def arrays_1k():
    return generate_topology_arrays(resolve_preset("1k", seed=bench_seed()))


@pytest.fixture(scope="module")
def topo_1k(arrays_1k):
    return arrays_1k.to_topology()


@pytest.fixture(scope="module")
def arrays_10k():
    return generate_topology_arrays(resolve_preset("10k", seed=bench_seed()))


def _dest_subset(arrays, n):
    step = max(1, arrays.n_as // n)
    return [int(a) for a in arrays.as_asn[::step]][:n]


def test_perf_topology_object_generate(benchmark):
    """Object-generator baseline: one paper-scale (1999-era) topology."""
    topo = run_once(
        benchmark,
        lambda: generate_topology(TopologyConfig.for_era("1999", seed=bench_seed())),
    )
    assert len(topo.ases) > 100


def test_perf_topology_object_converge(benchmark, topo_1k):
    """Object-solver baseline at 1k AS (shared scale with columnar)."""
    dests = sorted(topo_1k.ases)[:N_CONVERGE_DESTS]

    def converge():
        topo_1k.routing_cache("bgp").clear()
        table = BGPTable(topo_1k)
        table.converge_all(dests)
        return table

    table = run_once(benchmark, converge)
    assert table.route(max(topo_1k.ases), dests[0]) is not None


def test_perf_topology_columnar_converge_1k(benchmark, arrays_1k):
    """Columnar solver on the identical 1k workload (the speedup pair)."""
    dests = _dest_subset(arrays_1k, N_CONVERGE_DESTS)
    table = run_once(benchmark, converge_all, arrays_1k, dests, jobs=1)
    assert table.route(int(arrays_1k.as_asn[-1]), dests[0]) is not None


def test_perf_topology_scale_generate_10k(benchmark):
    """Vectorized generator: a 10k-AS internetwork from scratch."""
    arrays = run_once(
        benchmark,
        lambda: generate_topology_arrays(resolve_preset("10k", seed=bench_seed())),
    )
    assert arrays.n_as == 10_000


def test_perf_topology_columnar_converge_10k(benchmark, arrays_10k):
    """Blocked columnar convergence of a 512-destination slice at 10k AS."""
    dests = _dest_subset(arrays_10k, 512)
    table = run_once(benchmark, converge_all, arrays_10k, dests, jobs=1)
    assert table.route(int(arrays_10k.as_asn[-1]), dests[0]) is not None


def test_perf_topology_stream_summaries(benchmark, arrays_10k):
    """Streamed route-summary build (256 dests, bounded memory) at 10k AS."""
    dests = _dest_subset(arrays_10k, 256)
    records = run_once(
        benchmark, build_route_summaries, arrays_10k, dests, block=64
    )
    assert len(records) == len(dests)

"""Benchmark: regenerate Figure 10 (loss improvement by time of day)."""

from conftest import run_once

from repro.experiments import figure10


def test_figure10(benchmark, suite):
    fig = run_once(benchmark, figure10, suite, min_samples=3)
    print("\n" + fig.text)
    assert fig.series
    for series in fig.series:
        # Loss improvements stay within physical bounds in every bin.
        assert series.x.min() >= -1.0 and series.x.max() <= 1.0

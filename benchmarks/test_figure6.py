"""Benchmark: regenerate Figure 6 (mean vs median, convolution)."""

from conftest import run_once

from repro.experiments import figure6


def test_figure6(benchmark, suite, min_samples):
    fig = run_once(benchmark, figure6, suite, min_samples=min_samples)
    print("\n" + fig.text)
    # Paper: 'the difference is negligible'.
    assert fig.data["max_discrepancy"] < 0.3

"""Benchmark fixtures: the dataset suite used by every table/figure bench.

The suite scale is controlled by the ``REPRO_BENCH_SCALE`` environment
variable (default 0.35).  Set it to ``1.0`` to regenerate the paper's
experiments at full Table 1 measurement counts (the numbers recorded in
EXPERIMENTS.md); built datasets are cached on disk either way, so only the
first run pays the collection cost.

Run with::

    pytest benchmarks/ --benchmark-only -s
"""

from __future__ import annotations

import os

import pytest

from repro.datasets import BuildConfig, BuildReport
from repro.experiments import provision_datasets

#: Default benchmark scale (fraction of each dataset's full duration).
DEFAULT_BENCH_SCALE = 0.35

#: Default master seed (the paper's publication year, as everywhere else).
DEFAULT_BENCH_SEED = 1999


def bench_scale() -> float:
    return float(os.environ.get("REPRO_BENCH_SCALE", DEFAULT_BENCH_SCALE))


def bench_seed() -> int:
    """Master seed for the benchmark suite (``repro bench --seed`` sets it)."""
    return int(os.environ.get("REPRO_BENCH_SEED", DEFAULT_BENCH_SEED))


def bench_min_samples() -> int:
    """The paper's 30-measurement floor, scaled with the collection."""
    return max(4, int(round(30 * bench_scale())))


@pytest.fixture(scope="session")
def suite():
    """The eight Table 1 datasets at the benchmark scale (disk-cached).

    Cold builds fan out across worker processes (``REPRO_BUILD_JOBS``
    overrides the worker count); the provisioning summary is printed so
    ``-s`` runs show per-dataset build/load timings and cache hit/miss
    counts.
    """
    report = BuildReport()
    datasets = provision_datasets(
        BuildConfig(seed=bench_seed(), scale=bench_scale()), report=report
    )
    print(f"\n{report.summary()}")
    return datasets


@pytest.fixture(scope="session")
def min_samples():
    return bench_min_samples()


def run_once(benchmark, fn, *args, **kwargs):
    """Benchmark an expensive analysis exactly once and return its result."""
    return benchmark.pedantic(fn, args=args, kwargs=kwargs, iterations=1, rounds=1)

"""Benchmark: the Francis et al. triangulation validation (paper sec. 2).

The paper validates its tool suite by independently generating the host
distance-estimation graphs of Francis et al.; this bench regenerates that
experiment over the UW3 propagation graph.
"""

from conftest import run_once

from repro.core import prediction_quality, triangulate_dataset, violation_rate


def test_triangulation_validation(benchmark, suite, min_samples):
    uw3 = suite["UW3"]

    def run():
        points = triangulate_dataset(uw3, min_samples=min_samples)
        return points, violation_rate(points), prediction_quality(points)

    points, rate, quality = run_once(benchmark, run)
    print(
        f"\npairs={quality.n}  triangle violations={rate:.0%}  "
        f"median rel. error={quality.median_relative_error:.2f}  "
        f"within 2x={quality.within_factor_two:.0%}"
    )
    # Triangulation predicts distances usefully (Francis et al.) even
    # though a large minority of pairs violate the triangle inequality
    # (this paper's one-hop propagation finding).
    assert 0.15 <= rate <= 0.7
    assert quality.within_factor_two > 0.5

"""Ablation: robustness of the headline result to route dynamics.

The paper argues its finding is robust to path changes (route flaps are
one of the variance sources discussed in section 6.2).  Here the same
collection is run with and without a Paxson-calibrated flap process
(most pairs stable, a minority fluctuating); the headline improvement
fraction must not move materially.
"""

from conftest import run_once

from repro.core import Metric, analyze
from repro.datasets import Dataset, DatasetMeta
from repro.measurement import Campaign, poisson_pairs
from repro.netsim import NetworkConditions, SECONDS_PER_DAY
from repro.routing import PathResolver, RouteFlapModel
from repro.topology import TopologyConfig, generate_topology, place_hosts


def _fraction(flap_model) -> float:
    topo = generate_topology(TopologyConfig.for_era("1999", seed=81))
    place_hosts(topo, 14, seed=82, north_america_only=True, rate_limit_fraction=0.0)
    conditions = NetworkConditions(topo, seed=83)
    hosts = topo.host_names()
    campaign = Campaign(
        topo, conditions, hosts, resolver=PathResolver(topo), seed=84,
        control_failure_prob=0.0, flap_model=flap_model,
    )
    requests = poisson_pairs(hosts, 2 * SECONDS_PER_DAY, 45.0, seed=85)
    records, _ = campaign.run_traceroutes(requests)
    dataset = Dataset(
        meta=DatasetMeta(
            name="flap-ablation", method="traceroute", year=1999,
            duration_days=2, location="North America",
        ),
        hosts=hosts,
        traceroutes=records,
    )
    return analyze(dataset, Metric.RTT, min_samples=5).fraction_improved()


def test_headline_robust_to_route_flaps(benchmark):
    def run():
        stable = _fraction(None)
        flappy = _fraction(
            RouteFlapModel(flappy_fraction=0.25, flap_probability=0.1, seed=86)
        )
        return stable, flappy

    stable, flappy = run_once(benchmark, run)
    print(f"\nRTT-improvable pairs: stable routes={stable:.2f} with flaps={flappy:.2f}")
    assert abs(stable - flappy) < 0.12
    assert flappy > 0.2

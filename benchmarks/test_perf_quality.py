"""Performance benchmarks for the whole-program quality pass.

``repro check --deep`` parses all of ``src/repro`` into a project model
on every cold run, so its cost scales with the tree.  These benches
track the three tiers: raw model construction, a full cold deep
analysis, and a warm run answered from the digest-keyed cache (which is
what a repeat ``repro check --deep`` on an unchanged tree pays).

Record/compare via the usual recorder::

    repro bench --bench-file benchmarks/test_perf_quality.py \
        --output BENCH_quality.json
"""

from pathlib import Path

from repro.quality import run_check
from repro.quality.graph import analyze_project, build_project_model

REPO_ROOT = Path(__file__).resolve().parents[1]


def test_perf_graph_model_build(benchmark):
    model = benchmark(lambda: build_project_model(REPO_ROOT))
    assert "repro.routing.bgp" in model.modules


def test_perf_deep_analysis_cold(benchmark):
    findings = benchmark(lambda: analyze_project(REPO_ROOT))
    assert findings == []


def test_perf_deep_check_cached(benchmark, tmp_path):
    cache = tmp_path / "cache.json"
    prime = run_check([], root=REPO_ROOT, cache_path=cache, deep=True)
    assert prime.deep and not prime.deep_cache_hit

    result = benchmark(
        lambda: run_check([], root=REPO_ROOT, cache_path=cache, deep=True)
    )
    assert result.deep_cache_hit

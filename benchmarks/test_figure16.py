"""Benchmark: regenerate Figure 16 (six-group delay decomposition)."""

from conftest import run_once

from repro.core import DelayGroup
from repro.experiments import figure16


def test_figure16(benchmark, suite, min_samples):
    fig = run_once(benchmark, figure16, suite, min_samples=min_samples)
    print("\n" + fig.text)
    counts = fig.data["group_counts"]
    # Paper: 'there are very few paths in group 3 ... while group 6 is
    # much more populated'; groups 1 and 4 are the 'typical' points.
    assert counts[DelayGroup.G6] >= counts[DelayGroup.G3]
    assert counts[DelayGroup.G4] > 0
    assert counts[DelayGroup.G1] > 0

"""Benchmark: regenerate Figure 1 (RTT improvement CDFs)."""

from conftest import run_once

from repro.experiments import figure1


def test_figure1(benchmark, suite, min_samples):
    fig = run_once(benchmark, figure1, suite, min_samples=min_samples)
    print("\n" + fig.text)
    # Paper: 30-55% of paths have a smaller-RTT alternate.
    for name in ("UW1", "UW3", "D2-NA", "D2"):
        frac = fig.data[f"{name}_fraction_improved"]
        assert 0.2 <= frac <= 0.7, f"{name}: {frac:.2f}"
    # Some pairs improve by 20ms or more.
    for series in fig.series:
        assert series.fraction_above(20.0) > 0.05

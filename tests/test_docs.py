"""Documentation rot guards: referenced code objects must exist."""

import importlib
import re
from pathlib import Path

import pytest

ROOT = Path(__file__).resolve().parent.parent

#: Dotted references like `repro.core.stats.DiffEstimate` inside backticks.
_REF = re.compile(r"`(repro(?:\.[A-Za-z_][A-Za-z0-9_]*)+)`")


def _resolve(dotted: str) -> bool:
    parts = dotted.split(".")
    for split in range(len(parts), 0, -1):
        module_name = ".".join(parts[:split])
        try:
            obj = importlib.import_module(module_name)
        except ModuleNotFoundError:
            continue
        for attr in parts[split:]:
            if not hasattr(obj, attr):
                return False
            obj = getattr(obj, attr)
        return True
    return False


@pytest.mark.parametrize(
    "doc",
    ["README.md", "DESIGN.md", "EXPERIMENTS.md",
     "docs/METHODOLOGY.md", "docs/CALIBRATION.md", "docs/TUTORIAL.md",
     "docs/ROBUSTNESS.md", "docs/OBSERVABILITY.md"],
)
def test_code_references_resolve(doc):
    text = (ROOT / doc).read_text()
    unresolved = sorted(
        {ref for ref in _REF.findall(text) if not _resolve(ref)}
    )
    assert not unresolved, f"{doc} references missing objects: {unresolved}"


def test_documented_bench_files_exist():
    text = (ROOT / "DESIGN.md").read_text()
    for match in re.findall(r"benchmarks/([a-z0-9_]+\.py)", text):
        assert (ROOT / "benchmarks" / match).exists(), match


def test_documented_example_files_exist():
    text = (ROOT / "README.md").read_text()
    for match in re.findall(r"examples/([a-z0-9_]+\.py)", text):
        assert (ROOT / "examples" / match).exists(), match

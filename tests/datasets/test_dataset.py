"""Tests for the Dataset container and its corrections."""


import numpy as np
import pytest

from repro.datasets.dataset import Dataset, DatasetError, DatasetMeta
from repro.measurement.records import TracerouteRecord, TransferRecord

NAN = float("nan")


def _meta(name="T", method="traceroute"):
    return DatasetMeta(
        name=name, method=method, year=1999, duration_days=1, location="North America"
    )


def _tr(t, src, dst, samples, episode=-1):
    return TracerouteRecord(t=t, src=src, dst=dst, rtt_samples=samples, episode=episode)


@pytest.fixture()
def small() -> Dataset:
    records = [
        _tr(0.0, "a", "b", (10.0, 12.0, NAN)),
        _tr(60.0, "a", "b", (11.0, NAN, NAN)),
        _tr(120.0, "b", "a", (9.0, 9.5, 10.0)),
        _tr(180.0, "a", "c", (30.0, 31.0, 32.0)),
        _tr(86400.0 * 5.5, "a", "c", (40.0, 41.0, 42.0)),  # weekend
    ]
    return Dataset(meta=_meta(), hosts=["a", "b", "c"], traceroutes=records)


def test_mixed_record_families_rejected():
    with pytest.raises(DatasetError):
        Dataset(
            meta=_meta(),
            hosts=["a", "b"],
            traceroutes=[_tr(0, "a", "b", (1.0,))],
            transfers=[
                TransferRecord(t=0, src="a", dst="b", rtt_ms=1, loss_rate=0, bandwidth_kbps=1)
            ],
        )


def test_counts_and_coverage(small):
    assert small.n_measurements == 5
    assert small.n_pairs_possible() == 6
    assert small.pairs() == [("a", "b"), ("a", "c"), ("b", "a")]
    assert small.coverage() == pytest.approx(3 / 6)


def test_rtt_samples(small):
    np.testing.assert_allclose(small.rtt_samples(("a", "b")), [10.0, 12.0, 11.0])
    np.testing.assert_allclose(small.rtt_samples(("b", "a")), [9.0, 9.5, 10.0])
    assert small.rtt_samples(("c", "a")).size == 0


def test_loss_samples_all_probes(small):
    losses = small.loss_samples(("a", "b"))
    np.testing.assert_allclose(losses, [0, 0, 1, 0, 1, 1])


def test_loss_samples_first_probe_only(small):
    corrected = small.with_first_probe_loss_heuristic()
    np.testing.assert_allclose(corrected.loss_samples(("a", "b")), [0, 0])
    # RTT samples are unaffected by the loss heuristic.
    np.testing.assert_allclose(
        corrected.rtt_samples(("a", "b")), small.rtt_samples(("a", "b"))
    )


def test_with_min_samples(small):
    filtered = small.with_min_samples(2)
    assert filtered.pairs() == [("a", "b"), ("a", "c")]
    assert small.pairs() == [("a", "b"), ("a", "c"), ("b", "a")]  # original intact


def test_without_hosts(small):
    reduced = small.without_hosts(["b"])
    assert reduced.hosts == ["a", "c"]
    assert reduced.pairs() == [("a", "c")]
    # Original untouched (no aliased meta either).
    reduced.meta.name = "changed"
    assert small.meta.name == "T"


def test_restricted_to_times(small):
    weekday = small.restricted_to_times(lambda t: t < 86400.0)
    assert weekday.n_measurements == 4
    weekend = small.restricted_to_times(lambda t: t >= 86400.0 * 5)
    assert weekend.n_measurements == 1


def test_reverse_substitution():
    records = [
        _tr(0.0, "a", "lim", (NAN, NAN, 50.0)),
        _tr(10.0, "lim", "a", (20.0, 21.0, 22.0)),
        _tr(20.0, "a", "c", (30.0, 30.0, 30.0)),
    ]
    ds = Dataset(meta=_meta(), hosts=["a", "lim", "c"], traceroutes=records)
    fixed = ds.with_reverse_substitution(["lim"])
    # (a, lim) now carries the clean reverse measurements, relabeled.
    np.testing.assert_allclose(fixed.rtt_samples(("a", "lim")), [20.0, 21.0, 22.0])
    # (lim, a) keeps its own records.
    np.testing.assert_allclose(fixed.rtt_samples(("lim", "a")), [20.0, 21.0, 22.0])
    # Unrelated pairs untouched.
    np.testing.assert_allclose(fixed.rtt_samples(("a", "c")), [30.0, 30.0, 30.0])


def test_reverse_substitution_drops_limiter_pairs():
    records = [
        _tr(0.0, "x", "y", (NAN, 1.0, 1.0)),
    ]
    ds = Dataset(meta=_meta(), hosts=["x", "y"], traceroutes=records)
    fixed = ds.with_reverse_substitution(["x", "y"])
    assert fixed.pairs() == []


def test_reverse_substitution_rejects_transfers(mini_transfers):
    with pytest.raises(DatasetError):
        mini_transfers.with_reverse_substitution(["any"])


def test_episode_accessors():
    records = [
        _tr(0.0, "a", "b", (1.0,), episode=0),
        _tr(1.0, "b", "a", (2.0,), episode=0),
        _tr(500.0, "a", "b", (3.0,), episode=1),
        _tr(900.0, "a", "b", (4.0,)),
    ]
    ds = Dataset(meta=_meta(), hosts=["a", "b"], traceroutes=records)
    assert ds.episodes() == [0, 1]
    assert len(ds.records_in_episode(0)) == 2
    assert len(ds.records_in_episode(1)) == 1


def test_bandwidth_accessors(mini_transfers):
    pair = mini_transfers.pairs()[0]
    bw = mini_transfers.bandwidth_samples(pair)
    assert bw.size > 0
    assert np.all(bw > 0)
    rtt = mini_transfers.rtt_samples(pair)
    assert rtt.size == bw.size


def test_bandwidth_requires_transfer_dataset(small):
    with pytest.raises(DatasetError):
        small.bandwidth_samples(("a", "b"))


def test_timestamps(small):
    ts = small.timestamps(("a", "b"))
    np.testing.assert_allclose(ts, [0.0, 60.0])


def test_table1_row(small):
    row = small.table1_row()
    assert row["dataset"] == "T"
    assert row["hosts"] == 3
    assert row["measurements"] == 5
    assert row["paths_covered_pct"] == 50


def test_simulated_dataset_sanity(mini_dataset):
    assert mini_dataset.coverage() > 0.95
    pair = mini_dataset.pairs()[0]
    rtts = mini_dataset.rtt_samples(pair)
    assert rtts.size >= 10
    assert np.all(rtts > 0)
    losses = mini_dataset.loss_samples(pair)
    assert np.all((losses == 0.0) | (losses == 1.0))

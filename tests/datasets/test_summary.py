"""Tests for dataset diagnostics."""

import math

import numpy as np
import pytest

from repro.datasets.summary import DistributionSummary, summarize


def test_distribution_summary_basics():
    summary = DistributionSummary.from_values(np.arange(1.0, 101.0))
    assert summary.n == 100
    assert summary.mean == pytest.approx(50.5)
    assert summary.p10 < summary.p50 < summary.p90


def test_distribution_summary_empty():
    summary = DistributionSummary.from_values(np.array([]))
    assert summary.n == 0
    assert math.isnan(summary.mean)


@pytest.fixture(scope="module")
def mini_summary(mini_dataset):
    return summarize(mini_dataset)


def test_summary_counts(mini_dataset, mini_summary):
    assert mini_summary.name == mini_dataset.meta.name
    assert mini_summary.n_measurements == mini_dataset.n_measurements
    assert mini_summary.n_pairs == len(mini_dataset.pairs())
    assert mini_summary.coverage == pytest.approx(mini_dataset.coverage())


def test_summary_rtt_distribution_sane(mini_summary):
    assert mini_summary.rtt_ms.n > 1000
    assert 10.0 < mini_summary.rtt_ms.p50 < 1000.0
    assert mini_summary.rtt_ms.p10 < mini_summary.rtt_ms.p90


def test_summary_loss_bounds(mini_summary):
    assert 0.0 <= mini_summary.loss_rate.mean <= 1.0


def test_summary_host_participation(mini_dataset, mini_summary):
    assert len(mini_summary.hosts) == len(mini_dataset.hosts)
    total_source = sum(h.as_source for h in mini_summary.hosts)
    assert total_source == mini_dataset.n_measurements
    # Rate-limited hosts show the largest inbound loss.
    from repro.measurement import detect_rate_limiters, flagged_hosts

    flagged = set(flagged_hosts(detect_rate_limiters(mini_dataset)))
    if flagged:
        lossiest = max(mini_summary.hosts, key=lambda h: h.inbound_loss)
        assert lossiest.host in flagged


def test_summary_poisson_cv(mini_summary):
    # The mini dataset uses Poisson scheduling: CV of gaps ≈ 1.
    assert 0.8 < mini_summary.interarrival_cv < 1.2


def test_summary_diurnal_profile(mini_summary):
    profile = mini_summary.rtt_by_pst_hour
    assert profile
    assert max(profile.values()) > min(profile.values())


def test_summary_bandwidth_dataset(mini_transfers):
    summary = summarize(mini_transfers)
    assert summary.bandwidth_kbps is not None
    assert summary.bandwidth_kbps.n > 0
    assert summary.bandwidth_kbps.mean > 0


def test_render(mini_summary):
    text = mini_summary.render()
    assert mini_summary.name in text
    assert "RTT ms" in text
    assert "request-gap CV" in text


def test_summary_hop_counts(mini_summary):
    """The paper-era Internet saw ~10-30 router hops end to end."""
    assert mini_summary.hop_count is not None
    assert 5 <= mini_summary.hop_count.p10 <= mini_summary.hop_count.p90 <= 45
    assert mini_summary.as_path_length is not None
    assert 2 <= mini_summary.as_path_length.p50 <= 8

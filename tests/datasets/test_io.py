"""Tests for dataset serialization."""

import json
import math

import numpy as np
import pytest

from repro.datasets.io import DatasetIOError, load_dataset, save_dataset


def _assert_datasets_equal(a, b):
    assert a.meta == b.meta
    assert a.hosts == b.hosts
    assert a.loss_first_probe_only == b.loss_first_probe_only
    assert len(a.records) == len(b.records)
    assert a.path_info.keys() == b.path_info.keys()
    for pair in a.path_info:
        assert a.path_info[pair] == b.path_info[pair]
    for ra, rb in zip(a.traceroutes, b.traceroutes):
        assert (ra.t, ra.src, ra.dst, ra.episode) == (rb.t, rb.src, rb.dst, rb.episode)
        for sa, sb in zip(ra.rtt_samples, rb.rtt_samples):
            assert (math.isnan(sa) and math.isnan(sb)) or sa == sb
    for ra, rb in zip(a.transfers, b.transfers):
        assert ra == rb


def test_roundtrip_traceroute_dataset(mini_dataset, tmp_path):
    path = tmp_path / "mini.jsonl"
    save_dataset(mini_dataset, path)
    loaded = load_dataset(path)
    _assert_datasets_equal(mini_dataset, loaded)
    # Derived statistics agree.
    pair = mini_dataset.pairs()[0]
    np.testing.assert_allclose(
        mini_dataset.rtt_samples(pair), loaded.rtt_samples(pair)
    )


def test_roundtrip_transfer_dataset(mini_transfers, tmp_path):
    path = tmp_path / "bw.jsonl"
    save_dataset(mini_transfers, path)
    loaded = load_dataset(path)
    _assert_datasets_equal(mini_transfers, loaded)
    assert loaded.is_bandwidth


def test_roundtrip_preserves_corrections(mini_dataset, tmp_path):
    corrected = mini_dataset.with_first_probe_loss_heuristic()
    path = tmp_path / "c.jsonl"
    save_dataset(corrected, path)
    assert load_dataset(path).loss_first_probe_only


def test_roundtrip_preserves_stats(mini_dataset, tmp_path):
    path = tmp_path / "s.jsonl"
    save_dataset(mini_dataset, path)
    loaded = load_dataset(path)
    assert loaded.stats.requested == mini_dataset.stats.requested
    assert loaded.stats.completed == mini_dataset.stats.completed


def test_empty_file_rejected(tmp_path):
    path = tmp_path / "empty.jsonl"
    path.write_text("")
    with pytest.raises(DatasetIOError):
        load_dataset(path)


def test_garbled_header_rejected(tmp_path):
    path = tmp_path / "bad.jsonl"
    path.write_text("this is not json\n")
    with pytest.raises(DatasetIOError):
        load_dataset(path)


def test_unknown_version_rejected(mini_dataset, tmp_path):
    path = tmp_path / "v.jsonl"
    save_dataset(mini_dataset, path)
    lines = path.read_text().splitlines()
    header = json.loads(lines[0])
    header["format_version"] = 99
    lines[0] = json.dumps(header)
    path.write_text("\n".join(lines) + "\n")
    with pytest.raises(DatasetIOError):
        load_dataset(path)


def test_garbled_record_rejected(mini_dataset, tmp_path):
    path = tmp_path / "r.jsonl"
    save_dataset(mini_dataset, path)
    with path.open("a") as fh:
        fh.write("{broken\n")
    with pytest.raises(DatasetIOError):
        load_dataset(path)


def test_blank_lines_tolerated(mini_dataset, tmp_path):
    path = tmp_path / "b.jsonl"
    save_dataset(mini_dataset, path)
    with path.open("a") as fh:
        fh.write("\n\n")
    loaded = load_dataset(path)
    assert len(loaded.records) == len(mini_dataset.records)

"""Tests for dataset serialization."""

import json
import math
import os

import numpy as np
import pytest

from repro.datasets import Dataset, DatasetMeta
from repro.datasets.io import (
    CacheLock,
    CacheLockTimeout,
    DatasetIOError,
    load_dataset,
    save_dataset,
)
from repro.measurement.records import TracerouteRecord


def _assert_datasets_equal(a, b):
    assert a.meta == b.meta
    assert a.hosts == b.hosts
    assert a.loss_first_probe_only == b.loss_first_probe_only
    assert len(a.records) == len(b.records)
    assert a.path_info.keys() == b.path_info.keys()
    for pair in a.path_info:
        assert a.path_info[pair] == b.path_info[pair]
    for ra, rb in zip(a.traceroutes, b.traceroutes):
        assert (ra.t, ra.src, ra.dst, ra.episode) == (rb.t, rb.src, rb.dst, rb.episode)
        for sa, sb in zip(ra.rtt_samples, rb.rtt_samples):
            assert (math.isnan(sa) and math.isnan(sb)) or sa == sb
    for ra, rb in zip(a.transfers, b.transfers):
        assert ra == rb


def test_roundtrip_traceroute_dataset(mini_dataset, tmp_path):
    path = tmp_path / "mini.jsonl"
    save_dataset(mini_dataset, path)
    loaded = load_dataset(path)
    _assert_datasets_equal(mini_dataset, loaded)
    # Derived statistics agree.
    pair = mini_dataset.pairs()[0]
    np.testing.assert_allclose(
        mini_dataset.rtt_samples(pair), loaded.rtt_samples(pair)
    )


def test_roundtrip_transfer_dataset(mini_transfers, tmp_path):
    path = tmp_path / "bw.jsonl"
    save_dataset(mini_transfers, path)
    loaded = load_dataset(path)
    _assert_datasets_equal(mini_transfers, loaded)
    assert loaded.is_bandwidth


def test_roundtrip_preserves_corrections(mini_dataset, tmp_path):
    corrected = mini_dataset.with_first_probe_loss_heuristic()
    path = tmp_path / "c.jsonl"
    save_dataset(corrected, path)
    assert load_dataset(path).loss_first_probe_only


def test_roundtrip_preserves_stats(mini_dataset, tmp_path):
    path = tmp_path / "s.jsonl"
    save_dataset(mini_dataset, path)
    loaded = load_dataset(path)
    assert loaded.stats.requested == mini_dataset.stats.requested
    assert loaded.stats.completed == mini_dataset.stats.completed
    assert loaded.stats.control_failures == mini_dataset.stats.control_failures
    assert loaded.stats.blacked_out == mini_dataset.stats.blacked_out
    assert loaded.stats.failed_requests == mini_dataset.stats.failed_requests


def test_header_without_blacked_out_still_loads(mini_dataset, tmp_path):
    """Pre-blacked_out cache files decode with the counter defaulting to 0."""
    path = tmp_path / "legacy.jsonl"
    save_dataset(mini_dataset, path)
    lines = path.read_text().splitlines()
    header = json.loads(lines[0])
    del header["stats"]["blacked_out"]
    lines[0] = json.dumps(header)
    path.write_text("\n".join(lines) + "\n")
    assert load_dataset(path).stats.blacked_out == 0


def test_empty_file_rejected(tmp_path):
    path = tmp_path / "empty.jsonl"
    path.write_text("")
    with pytest.raises(DatasetIOError):
        load_dataset(path)


def test_garbled_header_rejected(tmp_path):
    path = tmp_path / "bad.jsonl"
    path.write_text("this is not json\n")
    with pytest.raises(DatasetIOError):
        load_dataset(path)


def test_unknown_version_rejected(mini_dataset, tmp_path):
    path = tmp_path / "v.jsonl"
    save_dataset(mini_dataset, path)
    lines = path.read_text().splitlines()
    header = json.loads(lines[0])
    header["format_version"] = 99
    lines[0] = json.dumps(header)
    path.write_text("\n".join(lines) + "\n")
    with pytest.raises(DatasetIOError):
        load_dataset(path)


def test_garbled_record_rejected(mini_dataset, tmp_path):
    path = tmp_path / "r.jsonl"
    save_dataset(mini_dataset, path)
    with path.open("a") as fh:
        fh.write("{broken\n")
    with pytest.raises(DatasetIOError):
        load_dataset(path)


def test_blank_lines_tolerated(mini_dataset, tmp_path):
    path = tmp_path / "b.jsonl"
    save_dataset(mini_dataset, path)
    with path.open("a") as fh:
        fh.write("\n\n")
    loaded = load_dataset(path)
    assert len(loaded.records) == len(mini_dataset.records)


def test_nan_samples_roundtrip(tmp_path):
    """All-NaN and mixed-NaN probe vectors survive the JSON null mapping."""
    ds = Dataset(
        meta=DatasetMeta(
            name="NAN", method="traceroute", year=1999,
            duration_days=1, location="World",
        ),
        hosts=["a", "b"],
        traceroutes=[
            TracerouteRecord(t=0.0, src="a", dst="b",
                             rtt_samples=(float("nan"),) * 3),
            TracerouteRecord(t=1.0, src="a", dst="b",
                             rtt_samples=(10.0, float("nan"), 12.5)),
        ],
    )
    path = tmp_path / "nan.jsonl"
    save_dataset(ds, path)
    loaded = load_dataset(path)
    assert loaded.traceroutes[0].n_lost == 3
    assert loaded.traceroutes[1].n_lost == 1
    assert loaded.traceroutes[1].rtt_samples[0] == 10.0


def test_truncated_file_rejected(mini_dataset, tmp_path):
    """Dropping trailing record lines must not be silently accepted."""
    path = tmp_path / "t.jsonl"
    save_dataset(mini_dataset, path)
    lines = path.read_text().splitlines()
    # Remove two records but keep the trailer: count mismatch.
    path.write_text("\n".join(lines[:-3] + lines[-1:]) + "\n")
    with pytest.raises(DatasetIOError, match="truncated"):
        load_dataset(path)


def test_missing_trailer_rejected(mini_dataset, tmp_path):
    """A file cut off before the trailer (crash mid-write) is rejected."""
    path = tmp_path / "m.jsonl"
    save_dataset(mini_dataset, path)
    lines = path.read_text().splitlines()
    path.write_text("\n".join(lines[:-1]) + "\n")
    with pytest.raises(DatasetIOError, match="trailer"):
        load_dataset(path)


def test_record_after_trailer_rejected(mini_dataset, tmp_path):
    path = tmp_path / "a.jsonl"
    save_dataset(mini_dataset, path)
    lines = path.read_text().splitlines()
    lines.append(lines[1])  # replay a record after the trailer
    path.write_text("\n".join(lines) + "\n")
    with pytest.raises(DatasetIOError, match="after trailer"):
        load_dataset(path)


def test_stale_header_schema_rejected(mini_dataset, tmp_path):
    """Unknown meta fields from another library version surface as
    DatasetIOError (so cache readers rebuild) rather than TypeError."""
    path = tmp_path / "schema.jsonl"
    save_dataset(mini_dataset, path)
    lines = path.read_text().splitlines()
    header = json.loads(lines[0])
    header["meta"]["exotic_future_field"] = 7
    lines[0] = json.dumps(header)
    path.write_text("\n".join(lines) + "\n")
    with pytest.raises(DatasetIOError, match="stale header"):
        load_dataset(path)


def test_stale_stats_schema_rejected(mini_dataset, tmp_path):
    path = tmp_path / "stats.jsonl"
    save_dataset(mini_dataset, path)
    lines = path.read_text().splitlines()
    header = json.loads(lines[0])
    header["stats"]["renamed_counter"] = 1
    lines[0] = json.dumps(header)
    path.write_text("\n".join(lines) + "\n")
    with pytest.raises(DatasetIOError, match="stale header"):
        load_dataset(path)


def test_save_is_atomic_and_leaves_no_temp_files(mini_dataset, tmp_path):
    path = tmp_path / "atomic.jsonl"
    save_dataset(mini_dataset, path)
    save_dataset(mini_dataset, path)  # overwrite in place
    assert [p.name for p in tmp_path.iterdir()] == ["atomic.jsonl"]
    load_dataset(path)  # still a complete, valid file


def test_failed_save_preserves_existing_file(mini_dataset, tmp_path):
    """A save that dies mid-write must leave the previous file intact."""
    path = tmp_path / "keep.jsonl"
    save_dataset(mini_dataset, path)
    before = path.read_bytes()
    bad = Dataset(
        meta=DatasetMeta(
            name="BAD", method="traceroute", year=1999,
            duration_days=1, location="World",
        ),
        hosts=["a", "b"],
        traceroutes=[
            TracerouteRecord(t=0.0, src="a", dst=object(), rtt_samples=(1.0,))
        ],
    )
    with pytest.raises(TypeError):
        save_dataset(bad, path)  # object() is not JSON serializable
    assert path.read_bytes() == before
    assert [p.name for p in tmp_path.iterdir()] == ["keep.jsonl"]


# -- CacheLock ---------------------------------------------------------------


def test_cache_lock_mutual_exclusion(tmp_path):
    with CacheLock(tmp_path):
        other = CacheLock(tmp_path, timeout_s=0.1, poll_interval_s=0.01)
        with pytest.raises(CacheLockTimeout):
            other.acquire()
    # Released: acquirable again.
    with CacheLock(tmp_path, timeout_s=0.1):
        pass


def test_cache_lock_breaks_dead_owner(tmp_path):
    lock_file = tmp_path / ".build.lock"
    lock_file.write_text(json.dumps({"pid": 2**22 + 12345, "t": 0}))
    with CacheLock(tmp_path, timeout_s=1.0):
        pass  # the dead owner's lock was stolen, not waited out


def test_cache_lock_breaks_ancient_lock(tmp_path):
    lock_file = tmp_path / ".build.lock"
    lock_file.write_text("garbage not json")
    old = 1_000_000_000
    os.utime(lock_file, (old, old))
    with CacheLock(tmp_path, timeout_s=1.0, stale_after_s=60.0):
        pass


def test_cache_lock_respects_live_owner(tmp_path):
    lock_file = tmp_path / ".build.lock"
    lock_file.write_text(json.dumps({"pid": os.getpid(), "t": 0}))
    lock = CacheLock(tmp_path, timeout_s=0.1, poll_interval_s=0.01)
    with pytest.raises(CacheLockTimeout):
        lock.acquire()


# -- structural verification and mid-record damage ---------------------------


def test_truncated_mid_record_rejected(mini_dataset, tmp_path):
    """A file cut mid-record-line (torn write) is rejected, not parsed."""
    path = tmp_path / "torn.jsonl"
    save_dataset(mini_dataset, path)
    text = path.read_text()
    lines = text.splitlines()
    # Cut the second record line in half: invalid JSON mid-file.
    lines[2] = lines[2][: len(lines[2]) // 2]
    path.write_text("\n".join(lines[:3]) + "\n")
    with pytest.raises(DatasetIOError, match="bad record"):
        load_dataset(path)


def test_verify_dataset_file_accepts_clean_save(mini_dataset, tmp_path):
    from repro.datasets.io import verify_dataset_file

    path = tmp_path / "ok.jsonl"
    save_dataset(mini_dataset, path)
    n = verify_dataset_file(path)
    assert n == len(mini_dataset.records)


def test_verify_dataset_file_rejects_structural_damage(mini_dataset, tmp_path):
    from repro.datasets.io import verify_dataset_file

    path = tmp_path / "v.jsonl"
    save_dataset(mini_dataset, path)
    pristine = path.read_text()
    lines = pristine.splitlines()

    # Missing trailer (crash before the final line).
    path.write_text("\n".join(lines[:-1]) + "\n")
    with pytest.raises(DatasetIOError, match="trailer"):
        verify_dataset_file(path)

    # Record-count mismatch (records dropped, trailer intact).
    path.write_text("\n".join(lines[:2] + lines[-1:]) + "\n")
    with pytest.raises(DatasetIOError, match="truncated"):
        verify_dataset_file(path)

    # Garbled header.
    path.write_text('{"format_version": <<<\n' + "\n".join(lines[1:]) + "\n")
    with pytest.raises(DatasetIOError, match="bad header"):
        verify_dataset_file(path)

    # Garbled trailer line.
    path.write_text("\n".join(lines[:-1]) + "\n" + lines[-1][:5] + "\n")
    with pytest.raises(DatasetIOError, match="trailer"):
        verify_dataset_file(path)

    # Header-only file.
    path.write_text(lines[0] + "\n")
    with pytest.raises(DatasetIOError, match="trailer"):
        verify_dataset_file(path)

    # And the pristine bytes still verify.
    path.write_text(pristine)
    verify_dataset_file(path)


def test_cache_lock_release_after_stale_takeover(tmp_path):
    """Regression: a lock holder whose lock was broken and taken over by
    a peer must not unlink the peer's lock on release."""
    lock = CacheLock(tmp_path)
    lock.acquire()
    lock_file = tmp_path / ".build.lock"
    peer = {"pid": os.getpid() + 1, "token": "peer-token", "t": 0}
    lock_file.write_text(json.dumps(peer))  # peer broke + re-acquired
    lock.release()
    assert json.loads(lock_file.read_text()) == peer
    lock_file.unlink()


def test_cache_lock_release_is_idempotent_when_lock_vanishes(tmp_path):
    lock = CacheLock(tmp_path)
    lock.acquire()
    (tmp_path / ".build.lock").unlink()
    lock.release()  # must not raise
    assert not (tmp_path / ".build.lock").exists()

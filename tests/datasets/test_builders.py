"""Tests for the per-paper-dataset builders (at reduced scale)."""

import pytest

from repro.datasets.builders import (
    BuildConfig,
    build_d2,
    build_n2,
    build_uw3,
    build_uw4,
    table1_order,
)

SCALE = 0.05  # keep builder tests quick


@pytest.fixture(scope="module")
def cfg():
    return BuildConfig(seed=77, scale=SCALE)


@pytest.fixture(scope="module")
def uw3_and_env(cfg):
    return build_uw3(cfg)


@pytest.fixture(scope="module")
def d2_pair(cfg):
    return build_d2(cfg)


def test_build_config_validation():
    with pytest.raises(ValueError):
        BuildConfig(scale=0.0)
    with pytest.raises(ValueError):
        BuildConfig(scale=1.5)
    assert BuildConfig(scale=0.5).days(10) == pytest.approx(5 * 86400)


def test_table1_order():
    assert table1_order() == [
        "D2-NA", "D2", "N2-NA", "N2", "UW1", "UW3", "UW4-A", "UW4-B",
    ]


def test_uw3_shape(uw3_and_env):
    uw3, env = uw3_and_env
    assert uw3.meta.name == "UW3"
    assert len(uw3.hosts) == 39
    assert uw3.n_measurements > 1000
    assert 0.7 < uw3.coverage() <= 0.95
    # Rate limiters were filtered out of the final host pool.
    assert all(not env.topo.host(h).rate_limits_icmp for h in uw3.hosts)


def test_uw3_path_info_has_as_paths(uw3_and_env):
    uw3, _ = uw3_and_env
    assert uw3.path_info
    any_info = next(iter(uw3.path_info.values()))
    assert len(any_info.as_path) >= 1


def test_uw4_shapes(cfg, uw3_and_env):
    _, env = uw3_and_env
    uw4a, uw4b = build_uw4(cfg, env)
    assert uw4a.hosts == uw4b.hosts
    assert len(uw4a.hosts) == 15
    assert set(uw4a.hosts) <= set(env.hosts)
    assert uw4a.episodes(), "UW4-A must be episode-scheduled"
    assert not uw4b.episodes(), "UW4-B is independently scheduled"
    # Episode datasets dwarf their long-term companions (Table 1).
    assert uw4a.n_measurements > 5 * uw4b.n_measurements


def test_d2_shape(d2_pair):
    d2, d2_na = d2_pair
    assert d2.meta.name == "D2" and d2.meta.location == "World"
    assert d2_na.meta.name == "D2-NA" and d2_na.meta.location == "North America"
    assert len(d2.hosts) == 33
    assert 15 <= len(d2_na.hosts) < 33
    assert set(d2_na.hosts) < set(d2.hosts)
    # The D2 loss heuristic must be carried by both.
    assert d2.loss_first_probe_only
    assert d2_na.loss_first_probe_only


def test_d2_na_is_a_subset(d2_pair):
    d2, d2_na = d2_pair
    na = set(d2_na.hosts)
    for rec in d2_na.traceroutes:
        assert rec.src in na and rec.dst in na
    assert d2_na.n_measurements < d2.n_measurements


def test_n2_shape(cfg):
    n2, n2_na = build_n2(cfg)
    assert n2.is_bandwidth and n2_na.is_bandwidth
    assert n2.meta.method == "tcpanaly"
    assert len(n2.hosts) == 31
    assert set(n2_na.hosts) < set(n2.hosts)
    pair = n2.pairs()[0]
    assert n2.bandwidth_samples(pair).size > 0


def test_builders_are_deterministic(cfg):
    a, _ = build_uw3(cfg)
    b, _ = build_uw3(BuildConfig(seed=77, scale=SCALE))
    assert a.hosts == b.hosts
    assert a.n_measurements == b.n_measurements
    ra, rb = a.traceroutes[0], b.traceroutes[0]
    assert (ra.t, ra.src, ra.dst) == (rb.t, rb.src, rb.dst)


def test_different_seeds_produce_different_data(cfg):
    a, _ = build_uw3(cfg)
    b, _ = build_uw3(BuildConfig(seed=78, scale=SCALE))
    assert a.hosts != b.hosts or a.n_measurements != b.n_measurements

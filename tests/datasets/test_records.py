"""Tests for measurement record types."""


import pytest

from repro.measurement.records import (
    CollectionStats,
    PathInfo,
    TracerouteRecord,
    TransferRecord,
)

NAN = float("nan")


def test_traceroute_record_loss_accounting():
    rec = TracerouteRecord(t=0.0, src="a", dst="b", rtt_samples=(10.0, NAN, 12.0))
    assert rec.n_probes == 3
    assert rec.n_lost == 1
    assert rec.successful_rtts == (10.0, 12.0)
    assert not rec.first_sample_lost()


def test_traceroute_record_first_sample_lost():
    rec = TracerouteRecord(t=0.0, src="a", dst="b", rtt_samples=(NAN, 11.0, 12.0))
    assert rec.first_sample_lost()
    assert rec.n_lost == 1


def test_traceroute_record_requires_samples():
    with pytest.raises(ValueError):
        TracerouteRecord(t=0.0, src="a", dst="b", rtt_samples=())


def test_traceroute_record_all_lost():
    rec = TracerouteRecord(t=0.0, src="a", dst="b", rtt_samples=(NAN, NAN, NAN))
    assert rec.n_lost == 3
    assert rec.successful_rtts == ()


def test_transfer_record_validation():
    TransferRecord(t=0.0, src="a", dst="b", rtt_ms=50.0, loss_rate=0.02, bandwidth_kbps=100.0)
    with pytest.raises(ValueError):
        TransferRecord(t=0.0, src="a", dst="b", rtt_ms=0.0, loss_rate=0.02, bandwidth_kbps=1.0)
    with pytest.raises(ValueError):
        TransferRecord(t=0.0, src="a", dst="b", rtt_ms=1.0, loss_rate=1.5, bandwidth_kbps=1.0)
    with pytest.raises(ValueError):
        TransferRecord(t=0.0, src="a", dst="b", rtt_ms=1.0, loss_rate=0.1, bandwidth_kbps=-1.0)


def test_path_info_holds_routing_facts():
    info = PathInfo(src="a", dst="b", as_path=(1, 2, 3), hop_count=12, prop_delay_ms=40.0)
    assert info.as_path == (1, 2, 3)


def test_collection_stats_defaults():
    stats = CollectionStats()
    assert stats.requested == 0
    assert stats.notes == []

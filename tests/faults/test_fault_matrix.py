"""Fault-matrix integration tests: injected faults against the real pipeline.

Every test pins an explicit ``fault_plan`` (possibly the empty plan, which
suppresses any ambient ``REPRO_FAULT_PLAN``), so the suite behaves
identically under CI's fixed-plan replay job and a plain local run.
"""

import hashlib
import json

import pytest

from repro.datasets import BuildConfig, BuildReport
from repro.experiments import runner
from repro.experiments.runner import provision_datasets
from repro.faults import BuildFailure

ALL_NAMES = {"D2-NA", "D2", "N2-NA", "N2", "UW1", "UW3", "UW4-A", "UW4-B"}


@pytest.fixture()
def tiny_cfg():
    return BuildConfig(seed=31, scale=0.02)


def _suite_dir(root, cfg):
    return root / f"seed{cfg.seed}-scale{cfg.scale:g}"


def _hashes(suite):
    return {
        p.name: hashlib.sha256(p.read_bytes()).hexdigest()
        for p in suite.glob("*.jsonl")
    }


def test_faulted_run_is_byte_identical_to_clean_run(
    tmp_path, monkeypatch, tiny_cfg
):
    """The headline guarantee: a run that survives injected worker
    crashes and cache corruption produces byte-identical artifacts."""
    monkeypatch.setenv("REPRO_CACHE_DIR", str(tmp_path / "clean"))
    provision_datasets(tiny_cfg, jobs=2, fault_plan="")
    clean = _hashes(_suite_dir(tmp_path / "clean", tiny_cfg))
    assert len(clean) == 8

    monkeypatch.setenv("REPRO_CACHE_DIR", str(tmp_path / "faulted"))
    report = BuildReport()
    plan = "crash:uw3;truncate:N2;garble-header:UW1;drop-trailer:UW4-A"
    datasets = provision_datasets(tiny_cfg, jobs=2, fault_plan=plan, report=report)
    assert set(datasets) == ALL_NAMES
    faulted = _hashes(_suite_dir(tmp_path / "faulted", tiny_cfg))
    # Quarantined corpses don't count; the eight live files must match.
    assert {n: h for n, h in faulted.items()} == clean
    # The faults really fired: builds retried, corrupt saves quarantined.
    assert report.n_retries > 0
    assert any("N2" in entry for entry in report.quarantined)
    assert report.failed_groups == []


def test_fail_fault_retries_to_success_serially(tmp_path, monkeypatch, tiny_cfg):
    monkeypatch.setenv("REPRO_CACHE_DIR", str(tmp_path / "cache"))
    report = BuildReport()
    datasets = provision_datasets(
        tiny_cfg, jobs=1, fault_plan="fail:d2:times=2", report=report
    )
    assert set(datasets) == ALL_NAMES
    assert report.n_retries == 2
    assert all("injected" in entry for entry in report.retries)


def test_retry_exhaustion_raises_build_failure(tmp_path, monkeypatch, tiny_cfg):
    monkeypatch.setenv("REPRO_CACHE_DIR", str(tmp_path / "cache"))
    with pytest.raises(BuildFailure) as exc_info:
        provision_datasets(tiny_cfg, jobs=1, fault_plan="fail:uw3:times=99")
    assert "uw3" in exc_info.value.failures


def test_keep_going_returns_partial_suite(tmp_path, monkeypatch, tiny_cfg):
    monkeypatch.setenv("REPRO_CACHE_DIR", str(tmp_path / "cache"))
    report = BuildReport()
    datasets = provision_datasets(
        tiny_cfg,
        jobs=1,
        fault_plan="fail:uw3:times=99",
        keep_going=True,
        report=report,
    )
    assert set(datasets) == ALL_NAMES - {"UW3"}
    assert report.failed_datasets == ["uw3"]
    # The failed group is not recorded as complete in the ledger.
    ledger_path = _suite_dir(tmp_path / "cache", tiny_cfg) / "run-ledger.json"
    completed = json.loads(ledger_path.read_text())["completed"]
    assert "uw3" not in completed
    assert set(completed) == {"d2", "n2", "uw1", "uw4"}


def test_lock_stale_injection_exercises_takeover(tmp_path, monkeypatch, tiny_cfg):
    monkeypatch.setenv("REPRO_CACHE_DIR", str(tmp_path / "cache"))
    datasets = provision_datasets(tiny_cfg, jobs=1, fault_plan="lock-stale")
    assert set(datasets) == ALL_NAMES
    suite = _suite_dir(tmp_path / "cache", tiny_cfg)
    # The planted dead-owner lock was broken, ours was released after.
    assert not (suite / ".build.lock").exists()


def test_resume_skips_groups_finished_before_interruption(
    tmp_path, monkeypatch, tiny_cfg
):
    """A mid-run kill leaves some groups ledgered; --resume reports them
    and rebuilds only the unfinished ones."""
    monkeypatch.setenv("REPRO_CACHE_DIR", str(tmp_path / "cache"))
    # First run "dies" with group n2 never completing (keep_going stands
    # in for the kill: everything else is saved and ledgered).
    provision_datasets(
        tiny_cfg, jobs=1, fault_plan="fail:n2:times=99", keep_going=True
    )
    suite = _suite_dir(tmp_path / "cache", tiny_cfg)
    before = _hashes(suite)
    assert set(before) == {f"{n}.jsonl" for n in ALL_NAMES - {"N2", "N2-NA"}}

    report = BuildReport()
    datasets = provision_datasets(
        tiny_cfg, jobs=1, fault_plan="", resume=True, report=report
    )
    assert set(datasets) == ALL_NAMES
    assert sorted(report.resumed_groups) == ["d2", "uw1", "uw3", "uw4"]
    assert sorted(report.cache_misses) == ["N2", "N2-NA"]
    assert report.n_cache_hits == 6
    # Only the n2 group was built; the six finished files are untouched.
    build_labels = {e.label for e in report.events if e.phase == "build"}
    assert build_labels == {"n2 -> N2-NA+N2"}
    after = _hashes(suite)
    for name, digest in before.items():
        assert after[name] == digest


def test_resume_with_stale_ledger_entry_rebuilds(tmp_path, monkeypatch, tiny_cfg):
    """A ledgered group whose cache file was later damaged is rebuilt,
    not trusted."""
    monkeypatch.setenv("REPRO_CACHE_DIR", str(tmp_path / "cache"))
    provision_datasets(tiny_cfg, jobs=1, fault_plan="")
    suite = _suite_dir(tmp_path / "cache", tiny_cfg)
    (suite / "UW3.jsonl").unlink()
    report = BuildReport()
    datasets = provision_datasets(
        tiny_cfg, jobs=1, fault_plan="", resume=True, report=report
    )
    assert set(datasets) == ALL_NAMES
    assert "uw3" not in report.resumed_groups
    assert any("stale" in note for note in report.fault_notes)
    assert report.cache_misses == ["UW3"]


def test_build_timeout_abandons_and_retries_slow_group(
    tmp_path, monkeypatch, tiny_cfg
):
    """An injected slow build blows the per-attempt deadline; the retry
    (without the fault) completes and artifacts are still canonical."""
    monkeypatch.setenv("REPRO_CACHE_DIR", str(tmp_path / "clean"))
    provision_datasets(tiny_cfg, jobs=2, fault_plan="")
    clean = _hashes(_suite_dir(tmp_path / "clean", tiny_cfg))

    monkeypatch.setenv("REPRO_CACHE_DIR", str(tmp_path / "slow"))
    report = BuildReport()
    datasets = provision_datasets(
        tiny_cfg,
        jobs=2,
        fault_plan="slow:uw1:delay=15",
        build_timeout=6.0,
        report=report,
    )
    assert set(datasets) == ALL_NAMES
    assert any("deadline" in entry for entry in report.retries)
    assert _hashes(_suite_dir(tmp_path / "slow", tiny_cfg)) == clean


def test_timeout_env_var(monkeypatch):
    monkeypatch.delenv(runner.TIMEOUT_ENV_VAR, raising=False)
    assert runner.resolve_build_timeout(None) is None
    assert runner.resolve_build_timeout(2.5) == 2.5
    monkeypatch.setenv(runner.TIMEOUT_ENV_VAR, "7.5")
    assert runner.resolve_build_timeout(None) == 7.5
    assert runner.resolve_build_timeout(1.0) == 1.0  # argument wins
    monkeypatch.setenv(runner.TIMEOUT_ENV_VAR, "soon")
    with pytest.raises(ValueError):
        runner.resolve_build_timeout(None)
    with pytest.raises(ValueError):
        runner.resolve_build_timeout(-1.0)

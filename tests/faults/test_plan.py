"""Tests for fault-plan parsing, matching, and round-tripping."""

import pytest

from repro.faults.plan import (
    ENV_VAR,
    KIND_SITES,
    SITE_BUILD,
    SITE_SAVE,
    FaultPlan,
    FaultPlanError,
    FaultSpec,
)


def test_parse_compact_clauses():
    plan = FaultPlan.parse("crash:uw3;fail:*:times=2;slow:d2:delay=1.5")
    assert [s.kind for s in plan.specs] == ["crash", "fail", "slow"]
    assert plan.specs[0].key == "uw3"
    assert plan.specs[1] == FaultSpec(kind="fail", key="*", times=2)
    assert plan.specs[2].delay_s == 1.5


def test_parse_defaults():
    plan = FaultPlan.parse("truncate")
    (spec,) = plan.specs
    assert spec.key == "*"
    assert spec.times == 1
    assert spec.site == SITE_SAVE


def test_parse_empty_is_empty_plan():
    assert FaultPlan.parse("") == FaultPlan()
    assert not FaultPlan.parse("  ")
    assert FaultPlan.parse(";;") == FaultPlan()


def test_spec_round_trips():
    plan = FaultPlan.parse(
        "crash:uw3;fail:*:times=2;slow:d2:delay=1.5;drop-trailer:N2"
    )
    assert FaultPlan.parse(plan.to_spec()) == plan


def test_parse_json_array():
    plan = FaultPlan.parse(
        '[{"kind": "crash", "key": "uw3"}, {"kind": "truncate", "times": 2}]'
    )
    assert plan.specs[0] == FaultSpec(kind="crash", key="uw3")
    assert plan.specs[1].times == 2
    assert FaultPlan.parse(plan.to_spec()) == plan


@pytest.mark.parametrize(
    "bad",
    [
        "explode:uw3",                      # unknown kind
        "crash:uw3:times=0",                # times < 1
        "crash:uw3:times=soon",             # non-integer times
        "slow:d2:delay=-1",                 # negative delay
        "crash:uw3:frequency=2",            # unknown option
        "crash:uw3:extra",                  # stray positional field
        "fail:",                            # explicit empty key
        "[{]",                              # bad JSON
        '{"kind": "crash"}',                # JSON but not an array
        '[{"key": "uw3"}]',                 # object without kind
        '[{"kind": "crash", "when": 1}]',   # unknown JSON field
        '[{"kind": "crash", "times": "x"}]',
    ],
)
def test_malformed_specs_rejected(bad):
    with pytest.raises(FaultPlanError):
        FaultPlan.parse(bad)


def test_errors_name_clause_text_and_position():
    with pytest.raises(
        FaultPlanError, match=r"clause 2 \('explode:uw3'\)"
    ):
        FaultPlan.parse("crash:uw3;explode:uw3")
    with pytest.raises(
        FaultPlanError, match=r"clause 1 \('slow:d2:delay=x'\)"
    ):
        FaultPlan.parse("slow:d2:delay=x;crash:uw3")


def test_match_site_key_and_attempt():
    plan = FaultPlan.parse("fail:uw3:times=2")
    assert plan.match(SITE_BUILD, "uw3", 0) is not None
    assert plan.match(SITE_BUILD, "uw3", 1) is not None
    assert plan.match(SITE_BUILD, "uw3", 2) is None       # budget spent
    assert plan.match(SITE_BUILD, "d2", 0) is None        # key mismatch
    assert plan.match(SITE_SAVE, "uw3", 0) is None        # site mismatch


def test_match_first_clause_wins():
    plan = FaultPlan.parse("slow:uw3;fail:*")
    assert plan.match(SITE_BUILD, "uw3", 0).kind == "slow"
    assert plan.match(SITE_BUILD, "d2", 0).kind == "fail"


def test_every_kind_has_a_site():
    for kind, site in KIND_SITES.items():
        spec = FaultSpec(kind=kind)
        assert spec.site == site
        assert spec.matches(site, "anything", 0)


def test_from_env(monkeypatch):
    monkeypatch.delenv(ENV_VAR, raising=False)
    assert FaultPlan.from_env() is None
    monkeypatch.setenv(ENV_VAR, "   ")
    assert FaultPlan.from_env() is None
    monkeypatch.setenv(ENV_VAR, "crash:uw3")
    assert FaultPlan.from_env() == FaultPlan.parse("crash:uw3")
    monkeypatch.setenv(ENV_VAR, "bogus:kind")
    with pytest.raises(FaultPlanError):
        FaultPlan.from_env()

"""Tests for the retrying build supervisor and the run ledger."""

import json
import os
import time

import pytest

from repro.datasets import BuildReport
from repro.faults.supervisor import (
    BuildFailure,
    BuildSupervisor,
    RetryPolicy,
    RunLedger,
)

# Tasks must be module-level so pool workers can unpickle them by
# reference.  Signature: task(label, attempt, plan_spec, *task_args).


def ok_task(label, attempt, plan_spec):
    return f"{label}@{attempt}"


def flaky_task(label, attempt, plan_spec, fail_below):
    if attempt < fail_below:
        raise RuntimeError(f"boom {label} attempt {attempt}")
    return (label, attempt)


def crashing_task(label, attempt, plan_spec):
    if attempt == 0:
        os._exit(113)
    return (label, attempt)


def sleeping_task(label, attempt, plan_spec, duration_s):
    if label == "slowpoke" and attempt == 0:
        time.sleep(duration_s)
    return (label, attempt)


def _fast_policy(**overrides):
    kwargs = dict(max_attempts=3, base_delay_s=0.001, cap_delay_s=0.002, seed=7)
    kwargs.update(overrides)
    return RetryPolicy(**kwargs)


def test_all_succeed_first_try():
    sup = BuildSupervisor(_fast_policy())
    result = sup.run(ok_task, ["a", "b", "c"])
    assert result.results == {"a": "a@0", "b": "b@0", "c": "c@0"}
    assert result.failures == {}
    assert result.attempts == {"a": 1, "b": 1, "c": 1}


def test_retry_until_success_records_report():
    report = BuildReport()
    sup = BuildSupervisor(_fast_policy())
    result = sup.run(flaky_task, ["a", "b"], (1,), report=report)
    assert result.results == {"a": ("a", 1), "b": ("b", 1)}
    assert result.attempts == {"a": 2, "b": 2}
    assert report.n_retries == 2
    assert all("boom" in entry for entry in report.retries)
    assert report.phase_seconds("backoff") > 0


def test_retry_exhaustion_reports_failure():
    report = BuildReport()
    sup = BuildSupervisor(_fast_policy(max_attempts=2))
    result = sup.run(flaky_task, ["a", "b"], (99,), report=report)
    assert result.results == {}
    assert set(result.failures) == {"a", "b"}
    assert result.attempts == {"a": 2, "b": 2}
    assert report.failed_datasets == ["a", "b"]
    raised = BuildFailure(result.failures)
    assert "a" in str(raised) and "boom" in str(raised)


def test_on_success_called_in_label_order():
    seen = []
    sup = BuildSupervisor(_fast_policy())
    sup.run(ok_task, ["z", "a", "m"], on_success=lambda lb, _: seen.append(lb))
    assert seen == ["z", "a", "m"]


def test_on_success_exception_propagates():
    sup = BuildSupervisor(_fast_policy())

    def explode(label, payload):
        raise BuildFailure({label: "save failed"})

    with pytest.raises(BuildFailure):
        sup.run(ok_task, ["a"], on_success=explode)


def test_backoff_is_deterministic_and_jittered():
    a = RetryPolicy(base_delay_s=0.1, cap_delay_s=10.0, seed=42)
    b = RetryPolicy(base_delay_s=0.1, cap_delay_s=10.0, seed=42)
    assert a.backoff_s("uw3", 1) == b.backoff_s("uw3", 1)
    assert a.backoff_s("uw3", 1) != a.backoff_s("d2", 1)
    assert a.backoff_s("uw3", 1) != a.backoff_s("uw3", 2)
    # Jitter stays within [0.5, 1.5) of the capped exponential base.
    for attempt in (1, 2, 3):
        base = min(10.0, 0.1 * 2 ** (attempt - 1))
        delay = a.backoff_s("uw3", attempt)
        assert 0.5 * base <= delay < 1.5 * base
    # A different seed paces differently.
    c = RetryPolicy(base_delay_s=0.1, cap_delay_s=10.0, seed=43)
    assert c.backoff_s("uw3", 1) != a.backoff_s("uw3", 1)


def test_injectable_sleep_receives_backoff_delays():
    slept = []
    sup = BuildSupervisor(_fast_policy(), sleep=slept.append)
    sup.run(flaky_task, ["a"], (2,))
    assert len(slept) == 2
    policy = _fast_policy()
    assert slept == [policy.backoff_s("a", 1), policy.backoff_s("a", 2)]


def test_worker_crash_breaks_pool_and_falls_back_to_serial():
    """An os._exit in a worker breaks the pool; affected groups retry
    serially in-process and the run still completes."""
    report = BuildReport()
    sup = BuildSupervisor(_fast_policy())
    result = sup.run(crashing_task, ["a", "b"], jobs=2, report=report)
    assert result.results == {"a": ("a", 1), "b": ("b", 1)}
    assert result.failures == {}
    assert any("serial fallback" in note for note in report.fault_notes)


def test_deadline_times_out_hung_worker():
    """A pooled task exceeding the deadline is abandoned and retried."""
    report = BuildReport()
    sup = BuildSupervisor(_fast_policy(timeout_s=0.3))
    result = sup.run(
        sleeping_task, ["slowpoke", "quick"], (5.0,), jobs=2, report=report
    )
    assert result.results["quick"] == ("quick", 0)
    assert result.results["slowpoke"] == ("slowpoke", 1)
    assert result.attempts["slowpoke"] == 2
    assert any("deadline" in entry for entry in report.retries)


def test_policy_validation():
    with pytest.raises(ValueError):
        RetryPolicy(max_attempts=0)
    with pytest.raises(ValueError):
        RetryPolicy(timeout_s=0.0)


# -- RunLedger ---------------------------------------------------------------


def test_ledger_mark_and_completed(tmp_path):
    ledger = RunLedger(tmp_path / "run-ledger.json", seed=1, scale=0.5)
    assert ledger.completed() == {}
    ledger.mark("d2", ["D2", "D2-NA"])
    ledger.mark("uw3", ["UW3"])
    assert ledger.completed() == {"d2": ["D2", "D2-NA"], "uw3": ["UW3"]}
    # No temp files left behind by the atomic write.
    assert [p.name for p in tmp_path.iterdir()] == ["run-ledger.json"]


def test_ledger_clear(tmp_path):
    ledger = RunLedger(tmp_path / "run-ledger.json", seed=1, scale=0.5)
    ledger.mark("d2", ["D2"])
    ledger.mark("uw3", ["UW3"])
    ledger.clear(["d2", "never-marked"])
    assert ledger.completed() == {"uw3": ["UW3"]}


def test_ledger_keyed_to_configuration(tmp_path):
    path = tmp_path / "run-ledger.json"
    RunLedger(path, seed=1, scale=0.5).mark("d2", ["D2"])
    assert RunLedger(path, seed=2, scale=0.5).completed() == {}
    assert RunLedger(path, seed=1, scale=0.1).completed() == {}
    assert RunLedger(path, seed=1, scale=0.5).completed() == {"d2": ["D2"]}


def test_ledger_tolerates_corruption(tmp_path):
    path = tmp_path / "run-ledger.json"
    path.write_text("{ not json")
    ledger = RunLedger(path, seed=1, scale=0.5)
    assert ledger.completed() == {}
    path.write_text(json.dumps({"version": 99, "completed": {}}))
    assert ledger.completed() == {}
    ledger.mark("d2", ["D2"])  # recovers by rewriting a valid ledger
    assert ledger.completed() == {"d2": ["D2"]}


def test_ledger_is_deterministic_bytes(tmp_path):
    a = tmp_path / "a.json"
    b = tmp_path / "b.json"
    for path in (a, b):
        ledger = RunLedger(path, seed=3, scale=0.25)
        ledger.mark("uw3", ["UW3"])
        ledger.mark("d2", ["D2", "D2-NA"])
    assert a.read_bytes() == b.read_bytes()

"""Tests for the runtime injection points (activation, attempts, perform)."""

import pickle
import time

import pytest

from repro.faults import injection
from repro.faults.plan import (
    ENV_VAR,
    SITE_BUILD,
    SITE_SAVE,
    FaultPlan,
    FaultPlanError,
    FaultSpec,
)


def test_activation_overrides_env(monkeypatch):
    monkeypatch.setenv(ENV_VAR, "fail:from-env")
    with injection.activate(FaultPlan.parse("fail:from-plan")):
        assert injection.pending(SITE_BUILD, "from-plan") is not None
        assert injection.pending(SITE_BUILD, "from-env") is None


def test_activating_none_suppresses_env(monkeypatch):
    monkeypatch.setenv(ENV_VAR, "fail:*")
    assert injection.pending(SITE_BUILD, "x") is not None  # env fallback
    with injection.activate(None):
        assert injection.pending(SITE_BUILD, "x") is None
    with injection.activate(FaultPlan()):
        assert injection.pending(SITE_BUILD, "x") is None
    # Fallback restored after the scope.
    assert injection.pending(SITE_BUILD, "x") is not None


def test_env_fallback_surfaces_parse_errors(monkeypatch):
    monkeypatch.setenv(ENV_VAR, "not-a-kind")
    with pytest.raises(FaultPlanError):
        injection.pending(SITE_BUILD, "x")


def test_attempt_scope_nesting():
    assert injection.current_attempt() == 0
    with injection.attempt_scope(2):
        assert injection.current_attempt() == 2
        with injection.attempt_scope(5):
            assert injection.current_attempt() == 5
        assert injection.current_attempt() == 2
    assert injection.current_attempt() == 0


def test_attempt_gates_firing():
    plan = FaultPlan.parse("fail:uw3:times=2")
    with injection.activate(plan):
        with injection.attempt_scope(1):
            assert injection.pending(SITE_BUILD, "uw3") is not None
        with injection.attempt_scope(2):
            assert injection.pending(SITE_BUILD, "uw3") is None


def test_perform_fail_raises():
    with injection.activate(FaultPlan.parse("fail:uw3")):
        with pytest.raises(injection.InjectedFault) as exc_info:
            injection.perform(SITE_BUILD, "uw3")
    assert exc_info.value.key == "uw3"
    assert exc_info.value.site == SITE_BUILD


def test_perform_crash_degrades_to_exception_in_parent():
    """A crash fault outside a pool worker must never kill the process."""
    with injection.activate(FaultPlan.parse("crash:*")):
        with pytest.raises(injection.InjectedFault):
            injection.perform(SITE_BUILD, "uw3")


def test_perform_slow_sleeps_then_returns():
    plan = FaultPlan.parse("slow:uw3:delay=0.05")
    with injection.activate(plan):
        start = time.perf_counter()
        spec = injection.perform(SITE_BUILD, "uw3")
        assert time.perf_counter() - start >= 0.05
    assert spec is not None and spec.kind == "slow"


def test_perform_no_match_is_noop():
    with injection.activate(FaultPlan.parse("fail:uw3")):
        assert injection.perform(SITE_BUILD, "other") is None
        assert injection.perform(SITE_SAVE, "uw3") is None


def test_pending_returns_corruption_faults_unexecuted():
    with injection.activate(FaultPlan.parse("truncate:N2")):
        spec = injection.pending(SITE_SAVE, "N2")
    assert spec == FaultSpec(kind="truncate", key="N2")


def test_injected_fault_pickles_round_trip():
    """Raised in pool workers and shipped back through the result queue."""
    with injection.activate(FaultPlan.parse("fail:uw3:times=2")):
        with injection.attempt_scope(1):
            with pytest.raises(injection.InjectedFault) as exc_info:
                injection.perform(SITE_BUILD, "uw3")
    clone = pickle.loads(pickle.dumps(exc_info.value))
    assert isinstance(clone, injection.InjectedFault)
    assert clone.spec == exc_info.value.spec
    assert clone.key == "uw3"
    assert clone.attempt == 1
    assert str(clone) == str(exc_info.value)

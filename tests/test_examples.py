"""Smoke tests: every example runs end-to-end at reduced scale."""

import subprocess
import sys
from pathlib import Path


EXAMPLES = Path(__file__).resolve().parent.parent / "examples"


def _run(script: str, *args: str, timeout: int = 240) -> str:
    result = subprocess.run(
        [sys.executable, str(EXAMPLES / script), *args],
        capture_output=True,
        text=True,
        timeout=timeout,
    )
    assert result.returncode == 0, result.stderr[-2000:]
    return result.stdout


def test_quickstart():
    out = _run("quickstart.py", "--scale", "0.05")
    assert "alternate better than default" in out
    assert "Largest RTT win" in out


def test_overlay_gain():
    out = _run("overlay_gain.py", "--scale", "0.05", "--hosts", "14")
    assert "relay helps latency on" in out
    assert "Busiest relays" in out


def test_routing_ablation():
    out = _run("routing_ablation.py", "--hosts", "10")
    assert "policy + early exit" in out
    assert "mean stretch" in out


def test_dataset_tour():
    out = _run("dataset_tour.py")
    assert "traceroute from" in out
    assert "detector recall" in out


def test_detour_overlay():
    out = _run("detour_overlay.py", "--hosts", "10", "--flows", "120")
    assert "oracle-gain capture" in out
    assert "Sensitivity to hysteresis" in out

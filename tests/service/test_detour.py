"""DetourService end to end: determinism, failover, strategy comparison."""

import math

import pytest

from repro.routing.bgp import ROUTING_JOBS_ENV_VAR
from repro.scenario.plan import ScenarioPlan
from repro.service import (
    DetourService,
    ServiceError,
    evaluate_strategies,
)

#: A transient outage with a clean heal: every affected candidate must be
#: marked down at t=600 and back up at t=1200.
OUTAGE_SPEC = "region-outage:na-west:at=600:for=600"


@pytest.fixture(scope="module")
def calm_service():
    return DetourService(seed=1999, n_hosts=10, n_pairs=4, duration_s=1800.0)


def test_invalid_parameters_raise_service_error():
    with pytest.raises(ServiceError, match="duration_s"):
        DetourService(duration_s=0.0, n_hosts=6, n_pairs=2)
    with pytest.raises(ServiceError, match="probe_interval_s"):
        DetourService(probe_interval_s=-1.0, n_hosts=6, n_pairs=2)
    with pytest.raises(ServiceError, match="relays_per_pair"):
        DetourService(relays_per_pair=0, n_hosts=6, n_pairs=2)
    with pytest.raises(ServiceError, match="n_pairs"):
        DetourService(n_hosts=6, n_pairs=10_000)


def test_candidates_lead_with_the_default_path(calm_service):
    for pair in calm_service.pairs:
        cands = calm_service.candidates[pair]
        assert cands[0].relay is None
        assert all(c.relay is not None for c in cands[1:])
        assert len(cands) == 3  # default + relays_per_pair


def test_rerun_replays_byte_identically(calm_service):
    table_a = evaluate_strategies(calm_service, ("lowest-latency",)).render()
    table_b = evaluate_strategies(calm_service, ("lowest-latency",)).render()
    assert table_a == table_b


def test_replay_is_byte_identical_across_routing_jobs(monkeypatch):
    plan = ScenarioPlan.parse(OUTAGE_SPEC)
    tables = []
    for jobs in (None, None, "2"):
        if jobs is None:
            monkeypatch.delenv(ROUTING_JOBS_ENV_VAR, raising=False)
        else:
            monkeypatch.setenv(ROUTING_JOBS_ENV_VAR, jobs)
        service = DetourService(
            plan, seed=11, n_hosts=8, n_pairs=2, duration_s=1500.0
        )
        tables.append(
            evaluate_strategies(service, ("lowest-latency",)).render()
        )
    monkeypatch.delenv(ROUTING_JOBS_ENV_VAR, raising=False)
    assert tables[0] == tables[1] == tables[2]


def test_scenario_outage_drives_reactive_failover():
    service = DetourService(
        ScenarioPlan.parse(OUTAGE_SPEC),
        seed=1999,
        n_hosts=10,
        n_pairs=4,
        duration_s=1800.0,
    )
    result = service.run("lowest-latency")
    # The link-down clauses behind the outage flowed through
    # mark_path_down, and the heal through mark_path_up — symmetrically.
    assert result.path_down_events > 0
    assert result.path_up_events == result.path_down_events
    # Outside the outage window every request is served.
    for rec in result.records:
        if rec.t < 600.0 or rec.t >= 1200.0:
            assert not rec.failed, f"request at t={rec.t} failed"
    # The heal is clean: no pair is still dark at the horizon.
    assert result.pairs_down_at_end == ()
    # The store reroutes within one probe interval of the heal: the
    # first post-heal probe round refreshes every healed leg, so every
    # request after t = 1200 + probe_interval is served with finite
    # expected quality.
    after_recovery = [
        r for r in result.records if r.t >= 1200.0 + service.probe_interval_s
    ]
    assert after_recovery
    assert all(math.isfinite(r.rtt_ms) for r in after_recovery)


def test_all_four_strategies_score_and_lowest_latency_wins(calm_service):
    report = evaluate_strategies(calm_service)
    names = [s.strategy for s in report.scores]
    assert names == ["lowest-hop", "lowest-latency", "random", "round-robin"]
    by_name = {s.strategy: s for s in report.scores}
    low = by_name["lowest-latency"]
    # The environment offers a real oracle gain and lowest-latency
    # recovers a non-trivial fraction of it online.
    assert low.mean_oracle_rtt_ms < low.mean_direct_rtt_ms
    assert low.gain_capture > 0.5
    assert low.deflection_rate > 0.0
    for other in ("lowest-hop", "random", "round-robin"):
        score = by_name[other]
        capture = score.gain_capture
        assert math.isnan(capture) or capture <= low.gain_capture
    # Identical environment per run: request counts and direct/oracle
    # columns match across strategies.
    assert len({s.requests for s in report.scores}) == 1
    assert len({s.mean_direct_rtt_ms for s in report.scores}) == 1
    table = report.render()
    assert "Strategy-vs-oracle comparison" in table
    for name in names:
        assert name in table


def test_probing_and_transfers_actually_ran(calm_service):
    result = calm_service.run("round-robin")
    assert result.probes_sent > 0
    assert result.transfers > 0
    assert 0 <= result.probes_lost <= result.probes_sent
    assert result.queries_per_second > 0.0


def test_facade_serve_returns_the_report(tmp_path, monkeypatch):
    monkeypatch.setenv("REPRO_CACHE_DIR", str(tmp_path / "cache"))
    from repro import ReproSession

    session = ReproSession(seed=1999, trace=True)
    report = session.serve(
        ["lowest-latency"], n_hosts=8, n_pairs=2, duration_s=900.0
    )
    assert [s.strategy for s in report.scores] == ["lowest-latency"]
    assert "service.run" in {sp["name"] for sp in session.trace().spans}


def test_facade_whatif_parses_spec_strings(tmp_path, monkeypatch):
    monkeypatch.setenv("REPRO_CACHE_DIR", str(tmp_path / "cache"))
    from repro import ReproSession
    from repro.scenario.plan import ScenarioPlanError

    from repro.topology import TopologyConfig, generate_topology

    topo = generate_topology(TopologyConfig.for_era("1999", seed=11))
    link = topo.as_links[0]
    session = ReproSession(seed=11)
    dataset, report = session.whatif(
        f"link-down:{link.a}-{link.b}:at=300:for=300", n_hosts=6
    )
    assert dataset.records
    assert report.availability.headline
    with pytest.raises(ScenarioPlanError):
        session.whatif("not-a-clause")

"""PathStore: leg-composed estimates, health bits, failover fallback."""

import math

import pytest

from repro.service.store import CandidatePath, PathStore

HOSTS = ["a", "b", "r1", "r2"]
PAIR = ("a", "b")


def _store():
    candidates = {
        PAIR: (
            CandidatePath(pair=PAIR, relay=None),
            CandidatePath(pair=PAIR, relay="r1"),
            CandidatePath(pair=PAIR, relay="r2"),
        )
    }
    return PathStore(HOSTS, candidates)


def test_legs_are_shared_between_candidates():
    store = _store()
    assert store.legs() == [
        ("a", "b"),
        ("a", "r1"),
        ("a", "r2"),
        ("r1", "b"),
        ("r2", "b"),
    ]
    assert store.candidates(PAIR)[1].legs == (("a", "r1"), ("r1", "b"))
    assert store.candidates(PAIR)[1].label == "via r1"


def test_estimates_compose_over_legs():
    store = _store()
    store.record_leg_probe(("a", "r1"), 40.0)
    store.record_leg_probe(("r1", "b"), 60.0)
    views = {v.relay: v for v in store.snapshot(PAIR)}
    assert views["r1"].est_rtt_ms == pytest.approx(100.0)
    # The direct leg has no probes yet: its estimate is not usable.
    assert math.isnan(views[None].est_rtt_ms)


def test_lost_probes_raise_the_composed_loss():
    store = _store()
    for _ in range(3):
        store.record_leg_probe(("a", "r1"), 40.0)
        store.record_leg_probe(("r1", "b"), 60.0)
    store.record_leg_probe(("a", "r1"), math.nan)  # lost probe
    view = next(v for v in store.snapshot(PAIR) if v.relay == "r1")
    assert view.est_loss > 0.0
    assert not math.isnan(view.est_rtt_ms)


def test_mark_down_removes_candidate_and_logs_transition():
    store = _store()
    assert store.mark_path_down(PAIR, "r1", t=600.0)
    assert not store.mark_path_down(PAIR, "r1", t=601.0)  # already down
    assert [v.relay for v in store.usable(PAIR)] == [None, "r2"]
    assert store.mark_path_up(PAIR, "r1", t=1200.0)
    assert [v.relay for v in store.usable(PAIR)] == [None, "r1", "r2"]
    ups = [tr.up for tr in store.transitions]
    times = [tr.t for tr in store.transitions]
    assert ups == [False, True] and times == [600.0, 1200.0]


def test_all_down_falls_back_to_the_default_path():
    store = _store()
    for relay in (None, "r1", "r2"):
        store.mark_path_down(PAIR, relay)
    fallback = store.usable(PAIR)
    assert len(fallback) == 1
    assert fallback[0].relay is None and not fallback[0].up


def test_reroute_recovers_within_one_probe_round():
    """After heal + reset, one probe round restores a usable estimate."""
    store = _store()
    store.record_leg_probe(("a", "r1"), 400.0)  # stale pre-outage sample
    store.record_leg_probe(("r1", "b"), 400.0)
    store.mark_path_down(PAIR, "r1", t=600.0)
    store.mark_path_up(PAIR, "r1", t=1200.0)
    store.reset_leg(("a", "r1"))
    store.reset_leg(("r1", "b"))
    view = next(v for v in store.snapshot(PAIR) if v.relay == "r1")
    assert math.isnan(view.est_rtt_ms)  # stale estimate dropped
    store.record_leg_probe(("a", "r1"), 40.0)
    store.record_leg_probe(("r1", "b"), 60.0)
    view = next(v for v in store.snapshot(PAIR) if v.relay == "r1")
    assert view.est_rtt_ms == pytest.approx(100.0)


def test_unknown_pair_and_candidate_raise():
    store = _store()
    with pytest.raises(KeyError):
        store.candidates(("a", "z"))
    with pytest.raises(KeyError):
        store.mark_path_down(PAIR, "not-a-relay")
    with pytest.raises(ValueError, match="no candidate paths"):
        PathStore(HOSTS, {PAIR: ()})

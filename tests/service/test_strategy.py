"""The strategy registry and the four built-in selection policies."""

import math

import pytest

from repro.service.strategy import (
    _REGISTRY,
    LowestHopStrategy,
    LowestLatencyStrategy,
    PathSelectionAlgorithm,
    RandomStrategy,
    RoundRobinStrategy,
    StrategyError,
    create_strategy,
    register_strategy,
    strategy_names,
)
from repro.service.store import CandidateView

PAIR = ("serve00", "serve01")


def _view(relay, index, *, est_rtt=math.nan, hops=0):
    return CandidateView(
        pair=PAIR,
        relay=relay,
        index=index,
        up=True,
        hop_count=hops,
        prop_rtt_ms=est_rtt,
        est_rtt_ms=est_rtt,
        est_loss=0.0,
    )


def test_builtin_strategies_are_registered():
    assert strategy_names() == (
        "lowest-hop",
        "lowest-latency",
        "random",
        "round-robin",
    )


def test_unknown_strategy_error_lists_registered_names():
    with pytest.raises(StrategyError) as exc:
        create_strategy("no-such-policy")
    message = str(exc.value)
    assert "no-such-policy" in message
    for name in strategy_names():
        assert name in message


def test_create_strategy_returns_the_registered_class():
    assert isinstance(create_strategy("lowest-latency"), LowestLatencyStrategy)
    assert isinstance(create_strategy("lowest-hop"), LowestHopStrategy)
    assert isinstance(create_strategy("random"), RandomStrategy)
    assert isinstance(create_strategy("round-robin"), RoundRobinStrategy)


def test_register_rejects_missing_name_and_duplicates():
    with pytest.raises(StrategyError, match="non-empty"):

        @register_strategy
        class Nameless(PathSelectionAlgorithm):
            def select(self, pair, candidates):
                return candidates[0]

    with pytest.raises(StrategyError, match="already registered"):

        @register_strategy
        class Imposter(PathSelectionAlgorithm):
            name = "lowest-latency"

            def select(self, pair, candidates):
                return candidates[0]

    assert _REGISTRY["lowest-latency"] is LowestLatencyStrategy


def test_custom_strategy_plugs_into_the_registry():
    @register_strategy
    class AlwaysDirect(PathSelectionAlgorithm):
        name = "test-always-direct"

        def select(self, pair, candidates):
            return candidates[0]

    try:
        built = create_strategy("test-always-direct", seed=7)
        assert isinstance(built, AlwaysDirect)
        assert "test-always-direct" in strategy_names()
    finally:
        _REGISTRY.pop("test-always-direct")


def test_lowest_latency_prefers_estimated_minimum():
    strategy = create_strategy("lowest-latency")
    direct = _view(None, 0, est_rtt=120.0)
    fast = _view("serve02", 1, est_rtt=80.0)
    unknown = _view("serve03", 2)  # NaN: no probe landed yet
    assert strategy.select(PAIR, [direct, fast, unknown]) is fast
    # All-NaN candidates fall back to the first (the default path).
    assert strategy.select(PAIR, [_view(None, 0), unknown]).relay is None
    # Ties break toward the earlier candidate.
    tied = _view("serve04", 1, est_rtt=120.0)
    assert strategy.select(PAIR, [direct, tied]) is direct


def test_lowest_hop_ignores_latency():
    strategy = create_strategy("lowest-hop")
    direct = _view(None, 0, est_rtt=80.0, hops=12)
    detour = _view("serve02", 1, est_rtt=200.0, hops=9)
    assert strategy.select(PAIR, [direct, detour]) is detour


def test_round_robin_rotates_per_pair():
    strategy = create_strategy("round-robin")
    candidates = [_view(None, 0), _view("serve02", 1), _view("serve03", 2)]
    picks = [strategy.select(PAIR, candidates).index for _ in range(6)]
    assert picks == [0, 1, 2, 0, 1, 2]
    other = ("serve04", "serve05")
    assert strategy.select(other, candidates).index == 0  # fresh cursor


def test_random_is_seed_deterministic():
    candidates = [_view(None, 0), _view("serve02", 1), _view("serve03", 2)]
    a = create_strategy("random", seed=3)
    b = create_strategy("random", seed=3)
    seq_a = [a.select(PAIR, candidates).index for _ in range(20)]
    seq_b = [b.select(PAIR, candidates).index for _ in range(20)]
    assert seq_a == seq_b
    assert len(set(seq_a)) > 1  # actually spreads over the candidates

"""The `repro serve` CLI contract: output, exit codes, determinism."""

import pytest

from repro.cli import main as repro_main

FAST = [
    "--hosts", "8",
    "--pairs", "2",
    "--duration", "900",
]


def test_serve_prints_table_and_writes_output(tmp_path, capsys):
    out = tmp_path / "table.txt"
    rc = repro_main(
        ["serve", "--strategy", "lowest-latency", "-o", str(out), *FAST]
    )
    captured = capsys.readouterr()
    assert rc == 0
    assert "Strategy-vs-oracle comparison" in captured.out
    assert "lowest-latency" in captured.out
    assert "queries/s" in captured.out
    text = out.read_text()
    assert "Strategy-vs-oracle comparison" in text
    assert "queries/s" not in text  # wall clock never enters the artifact


def test_serve_strategy_all_expands_to_every_registered(capsys):
    rc = repro_main(["serve", "--strategy", "all", *FAST])
    captured = capsys.readouterr()
    assert rc == 0
    for name in ("lowest-hop", "lowest-latency", "random", "round-robin"):
        assert name in captured.out


def test_serve_unknown_strategy_exits_2(capsys):
    rc = repro_main(["serve", "--strategy", "teleport", *FAST])
    captured = capsys.readouterr()
    assert rc == 2
    assert "registered strategies" in captured.err


def test_serve_bad_scenario_exits_2(capsys):
    rc = repro_main(["serve", "--scenario", "gibberish", *FAST])
    captured = capsys.readouterr()
    assert rc == 2
    assert "bad scenario" in captured.err


def test_serve_bad_config_exits_2(capsys):
    rc = repro_main(["serve", "--hosts", "6", "--pairs", "9999"])
    captured = capsys.readouterr()
    assert rc == 2
    assert "n_pairs" in captured.err


def test_serve_output_is_deterministic(tmp_path, capsys):
    blobs = []
    for i in range(2):
        out = tmp_path / f"run{i}.txt"
        rc = repro_main(
            ["serve", "--strategy", "lowest-latency", "--seed", "7",
             "-o", str(out), *FAST]
        )
        assert rc == 0
        blobs.append(out.read_bytes())
    capsys.readouterr()
    assert blobs[0] == blobs[1]


def test_serve_trace_artifact(tmp_path, capsys):
    trace = tmp_path / "serve-trace.json"
    rc = repro_main(
        ["serve", "--strategy", "lowest-latency", "--trace", str(trace),
         *FAST]
    )
    capsys.readouterr()
    assert rc == 0
    assert trace.exists()
    import json

    payload = json.loads(trace.read_text())
    names = {span["name"] for span in payload["spans"]}
    assert "service.run" in names
    assert payload["meta"]["command"] == "serve"

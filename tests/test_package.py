"""Package-level quality gates: exports, version, docstring coverage."""

import importlib
import inspect
import pkgutil

import pytest

import repro

PACKAGES = [
    "repro",
    "repro.topology",
    "repro.routing",
    "repro.netsim",
    "repro.measurement",
    "repro.datasets",
    "repro.core",
    "repro.experiments",
    "repro.overlay",
    "repro.viz",
    "repro.obs",
]


def test_version():
    assert repro.__version__ == "1.0.0"


@pytest.mark.parametrize("name", PACKAGES)
def test_package_all_resolves(name):
    """Every name in __all__ must actually exist in the package."""
    module = importlib.import_module(name)
    assert hasattr(module, "__all__"), f"{name} lacks __all__"
    for symbol in module.__all__:
        assert hasattr(module, symbol), f"{name}.{symbol} missing"


@pytest.mark.parametrize("name", PACKAGES)
def test_package_all_sorted(name):
    module = importlib.import_module(name)
    exported = list(module.__all__)
    assert exported == sorted(exported), f"{name}.__all__ is unsorted"


def _walk_public_members():
    for package_name in PACKAGES:
        package = importlib.import_module(package_name)
        for module_info in pkgutil.iter_modules(package.__path__ if hasattr(package, "__path__") else []):
            full = f"{package_name}.{module_info.name}"
            module = importlib.import_module(full)
            for attr_name in dir(module):
                if attr_name.startswith("_"):
                    continue
                obj = getattr(module, attr_name)
                if getattr(obj, "__module__", None) != full:
                    continue
                if inspect.isclass(obj) or inspect.isfunction(obj):
                    yield full, attr_name, obj


def test_every_public_item_is_documented():
    """Deliverable (e): doc comments on every public item."""
    undocumented = [
        f"{module}.{name}"
        for module, name, obj in _walk_public_members()
        if not (obj.__doc__ or "").strip()
    ]
    assert not undocumented, f"undocumented public items: {undocumented}"


def test_public_functions_have_annotations():
    """Public functions carry type annotations on their signatures."""
    missing = []
    for module, name, obj in _walk_public_members():
        if not inspect.isfunction(obj):
            continue
        signature = inspect.signature(obj)
        if signature.return_annotation is inspect.Signature.empty:
            missing.append(f"{module}.{name}")
    assert not missing, f"missing return annotations: {missing}"

"""Experiment fixtures now live in the top-level conftest."""

"""Tests for the Figure 1-16 reproductions (reduced-scale suite)."""

import numpy as np
import pytest

from repro.experiments.figures import (
    ALL_FIGURES,
    FigureError,
    figure1,
    figure2,
    figure3,
    figure4,
    figure5,
    figure6,
    figure7,
    figure8,
    figure9,
    figure10,
    figure11,
    figure12,
    figure13,
    figure14,
    figure15,
    figure16,
)


def test_figure_registry_complete():
    assert set(ALL_FIGURES) == {f"figure{i}" for i in range(1, 17)}


def test_missing_datasets_raise():
    with pytest.raises(FigureError):
        figure4({})


def test_figure1(suite, min_samples):
    fig = figure1(suite, min_samples=min_samples)
    labels = [s.label for s in fig.series]
    assert labels == ["UW1", "UW3", "D2-NA", "D2"]
    for name in labels:
        frac = fig.data[f"{name}_fraction_improved"]
        assert 0.05 < frac < 0.95
    assert "Figure 1" in fig.text


def test_figure2_ratios_positive(suite, min_samples):
    fig = figure2(suite, min_samples=min_samples)
    for series in fig.series:
        assert np.all(series.x > 0)


def test_figure3_loss_bounds(suite, min_samples):
    fig = figure3(suite, min_samples=min_samples)
    for series in fig.series:
        assert np.all(series.x >= -1.0) and np.all(series.x <= 1.0)
    # Most pairs improve on loss for the densely sampled UW datasets
    # (paper: 75-85%); sparse reduced-scale D2 may sit lower.
    by_label = {s.label: s for s in fig.series}
    assert by_label["UW3"].fraction_above(0.0) > 0.3


def test_figure4_has_four_curves(suite):
    fig = figure4(suite)
    labels = [s.label for s in fig.series]
    assert labels == [
        "N2 pessimistic",
        "N2 optimistic",
        "N2-NA pessimistic",
        "N2-NA optimistic",
    ]


def test_figure4_optimistic_dominates(suite):
    fig = figure4(suite)
    assert (
        fig.data["N2 optimistic_fraction_improved"]
        >= fig.data["N2 pessimistic_fraction_improved"]
    )


def test_figure5_ratio_curves(suite):
    fig = figure5(suite)
    for series in fig.series:
        assert np.all(series.x > 0)


def test_figure6_mean_vs_median(suite, min_samples):
    fig = figure6(suite, min_samples=min_samples)
    assert [s.label for s in fig.series] == ["means", "medians"]
    assert 0.0 <= fig.data["max_discrepancy"] <= 1.0


def test_figure7_confidence_intervals(suite, min_samples):
    fig = figure7(suite, min_samples=min_samples)
    ci_low, ci_high = fig.data["ci_low"], fig.data["ci_high"]
    assert np.all(ci_low <= ci_high)
    assert fig.data["mean_halfwidth"] > 0


def test_figure8_loss_cis(suite, min_samples):
    fig = figure8(suite, min_samples=min_samples)
    assert np.all(fig.data["ci_low"] <= fig.data["ci_high"])


def test_figure9_bins(suite):
    fig = figure9(suite, min_samples=2)
    labels = {s.label for s in fig.series}
    assert labels <= {"weekend", "0000-0600", "0600-1200", "1200-1800", "1800-2400"}
    # The reduced-scale UW3 trace only spans ~1 day, so not every bin has
    # data; at least the bins the trace crosses must be populated.
    assert len(labels) >= 2


def test_figure10_loss_bins(suite):
    fig = figure10(suite, min_samples=2)
    assert fig.series


def test_figure11_three_curves(suite, min_samples):
    fig = figure11(suite, min_samples=min_samples, max_episodes=25)
    labels = [s.label for s in fig.series]
    assert labels == ["UW4-B", "pair-averaged UW4-A", "unaveraged UW4-A"]
    unavg = fig.series[2]
    pair_avg = fig.series[1]
    assert unavg.x.size > pair_avg.x.size


def test_figure12_removal(suite, min_samples):
    fig = figure12(suite, min_samples=min_samples, k=2)
    assert len(fig.series) == 2
    assert len(fig.data["steps"]) <= 2
    assert fig.data["baseline_fraction"] > 0


def test_figure13_contributions(suite, min_samples):
    fig = figure13(suite, min_samples=min_samples)
    assert 0.0 <= fig.data["tail_heaviness"] <= 1.0
    assert fig.series[0].x.size == 39  # UW3's host count


def test_figure14_scatter(suite, min_samples):
    fig = figure14(suite, min_samples=min_samples)
    points = fig.data["points"]
    assert points
    assert -1.0 <= fig.data["correlation"] <= 1.0
    assert fig.series == []


def test_figure15_two_curves(suite, min_samples):
    fig = figure15(suite, min_samples=min_samples)
    assert [s.label for s in fig.series] == ["propagation delay", "mean round-trip"]
    assert 0.0 < fig.data["prop_fraction_improved"] < 1.0


def test_figure16_groups(suite, min_samples):
    fig = figure16(suite, min_samples=min_samples)
    counts = fig.data["group_counts"]
    assert sum(counts.values()) == len(fig.data["points"])


def test_all_figures_render(suite, min_samples):
    """Every figure produces non-empty text without errors."""
    kwargs = {
        "figure6": dict(min_samples=min_samples),
        "figure9": dict(min_samples=2),
        "figure10": dict(min_samples=2),
        "figure11": dict(min_samples=min_samples, max_episodes=10),
        "figure12": dict(min_samples=min_samples, k=1),
    }
    for name, fn in ALL_FIGURES.items():
        if name in ("figure4", "figure5"):
            fig = fn(suite)
        else:
            fig = fn(suite, **kwargs.get(name, dict(min_samples=min_samples)))
        assert fig.name == name
        assert fig.text.strip(), name

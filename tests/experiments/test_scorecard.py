"""Tests for the reproduction scorecard."""

import pytest

from repro.experiments.figures import (
    figure1,
    figure6,
    figure12,
    figure13,
    figure14,
    figure15,
    figure16,
)
from repro.experiments.scorecard import CHECKS, grade, render_scorecard
from repro.experiments.tables import table1, table2, table3


@pytest.fixture(scope="module")
def artifacts(suite, min_samples):
    return {
        "table1": table1(suite),
        "table2": table2(suite, min_samples=min_samples),
        "table3": table3(suite, min_samples=min_samples),
        "figure1": figure1(suite, min_samples=min_samples),
        "figure6": figure6(suite, min_samples=min_samples),
        "figure12": figure12(suite, min_samples=min_samples, k=2),
        "figure13": figure13(suite, min_samples=min_samples),
        "figure14": figure14(suite, min_samples=min_samples),
        "figure15": figure15(suite, min_samples=min_samples),
        "figure16": figure16(suite, min_samples=min_samples),
    }


def test_registry_is_sane():
    assert "table1" in CHECKS
    assert "figure16" in CHECKS


def test_grade_runs_applicable_checks(artifacts):
    results = grade(artifacts)
    graded = {r.artifact for r in results}
    assert graded == set(artifacts) & set(CHECKS)
    for r in results:
        assert r.detail


def test_reduced_scale_suite_mostly_passes(artifacts):
    results = grade(artifacts)
    passed = sum(r.passed for r in results)
    assert passed >= len(results) - 2  # allow slack at reduced scale


def test_missing_artifacts_skipped(artifacts):
    results = grade({"table1": artifacts["table1"]})
    assert len(results) == 1
    assert results[0].artifact == "table1"


def test_malformed_artifact_is_warn_not_crash():
    from repro.experiments.figures import FigureResult

    results = grade({"figure12": FigureResult(name="figure12", title="broken")})
    assert len(results) == 1
    assert not results[0].passed
    assert "error" in results[0].detail


def test_render_scorecard(artifacts):
    text = render_scorecard(grade(artifacts))
    assert "Scorecard" in text
    assert "checks passed" in text
    assert "[PASS]" in text or "[WARN]" in text

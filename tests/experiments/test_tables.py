"""Tests for the Table 1/2/3 reproductions."""


from repro.experiments.tables import TTEST_DATASETS, table1, table2, table3


def test_table1_rows(suite):
    result = table1(suite)
    assert result.name == "table1"
    names = [row[0] for row in result.rows]
    assert names == ["D2-NA", "D2", "N2-NA", "N2", "UW1", "UW3", "UW4-A", "UW4-B"]
    by_name = {row[0]: row for row in result.rows}
    # Host counts match the paper exactly (they are structural, not scaled).
    assert by_name["UW1"][5] == 36
    assert by_name["UW3"][5] == 39
    assert by_name["UW4-A"][5] == 15
    assert by_name["UW4-B"][5] == 15
    assert by_name["D2"][5] == 33
    assert by_name["N2"][5] == 31
    # Methods and locations.
    assert by_name["N2"][1] == "tcpanaly"
    assert by_name["D2"][4] == "World"
    assert by_name["D2-NA"][4] == "North America"
    # UW4 measured every pair.
    assert by_name["UW4-A"][7] == 100
    assert "Table 1" in result.text


def test_table1_partial_suite(suite):
    subset = {k: suite[k] for k in ["UW3", "D2"]}
    result = table1(subset)
    assert [row[0] for row in result.rows] == ["D2", "UW3"]


def test_table2_structure(suite, min_samples):
    result = table2(suite, min_samples=min_samples)
    assert result.headers == ("Alternate is", *TTEST_DATASETS)
    labels = [row[0] for row in result.rows]
    assert labels == ["Better", "Indeterminate", "Worse"]
    # Percentages in each column sum to ~100.
    for col in range(1, len(result.headers)):
        total = sum(int(row[col].rstrip("%")) for row in result.rows)
        assert 97 <= total <= 103


def test_table3_has_zero_row(suite, min_samples):
    result = table3(suite, min_samples=min_samples)
    labels = [row[0] for row in result.rows]
    assert labels == ["Better", "Indeterminate", "Zero", "Worse"]
    for col in range(1, len(result.headers)):
        total = sum(int(row[col].rstrip("%")) for row in result.rows)
        assert 97 <= total <= 103


def test_tables_render(suite, min_samples):
    for result in (
        table1(suite),
        table2(suite, min_samples=min_samples),
        table3(suite, min_samples=min_samples),
    ):
        assert str(result) == result.text
        assert len(result.text.splitlines()) >= 4

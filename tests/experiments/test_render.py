"""Tests for figure-to-SVG rendering."""

import pytest

from repro.experiments.figures import (
    figure1,
    figure7,
    figure14,
    figure16,
)
from repro.experiments.render import RenderError, render_all, render_figure


@pytest.fixture(scope="module")
def figures(suite, min_samples):
    return {
        "figure1": figure1(suite, min_samples=min_samples),
        "figure7": figure7(suite, min_samples=min_samples),
        "figure14": figure14(suite, min_samples=min_samples),
        "figure16": figure16(suite, min_samples=min_samples),
    }


def test_render_cdf_figure(figures):
    svg = render_figure(figures["figure1"]).render()
    assert "<polyline" in svg
    assert "Round-trip latency (ms)" in svg


def test_render_ci_figure_has_error_bars(figures):
    plain = render_figure(figures["figure1"]).render()
    with_ci = render_figure(figures["figure7"]).render()
    assert with_ci.count("<line") > plain.count("<line")


def test_render_figure14_scatter(figures):
    svg = render_figure(figures["figure14"]).render()
    assert "<circle" in svg
    assert "log10" in svg


def test_render_figure16_scatter_with_diagonal(figures):
    svg = render_figure(figures["figure16"]).render()
    assert "<circle" in svg
    assert 'stroke-dasharray="5,4"' in svg


def test_render_all_writes_files(tmp_path, figures):
    paths = render_all(figures, tmp_path)
    assert len(paths) == len(figures)
    for path in paths:
        assert path.exists()
        assert path.suffix == ".svg"


def test_render_empty_figure_raises():
    from repro.experiments.figures import FigureResult

    empty = FigureResult(name="figure1", title="t")
    with pytest.raises(RenderError):
        render_figure(empty)


def test_render_all_skips_unrenderable(tmp_path, figures):
    from repro.experiments.figures import FigureResult

    broken = dict(figures)
    broken["figure99"] = FigureResult(name="figure99", title="empty")
    paths = render_all(broken, tmp_path)
    assert len(paths) == len(figures)

"""Tests for the plain-text rendering helpers."""

from repro.core.stats import make_cdf
from repro.experiments.report import (
    cdf_summary_row,
    format_percent,
    render_cdf_points,
    render_cdf_summaries,
    render_table,
)


def test_render_table_alignment():
    text = render_table(["name", "n"], [["alpha", 1], ["b", 22]], title="T")
    lines = text.splitlines()
    assert lines[0] == "T"
    assert "name" in lines[1] and "n" in lines[1]
    assert set(lines[2]) <= {"-", "+"}
    # Columns align: every data row has the same separator positions.
    assert lines[3].index("|") == lines[4].index("|")


def test_render_table_without_title():
    text = render_table(["a"], [["x"]])
    assert not text.startswith("\n")
    assert "x" in text


def test_cdf_summary_row():
    series = make_cdf([-10.0, 0.5, 10.0, 20.0], label="demo")
    row = cdf_summary_row(series, unit="ms")
    assert row[0] == "demo"
    assert row[1] == 4
    assert row[2] == "75%"  # three of four values above zero
    assert all(isinstance(cell, str) for cell in row[2:])


def test_render_cdf_summaries():
    series = [make_cdf([1.0, 2.0], label="s1"), make_cdf([3.0], label="s2")]
    text = render_cdf_summaries(series, "My Title", unit="x")
    assert "My Title" in text
    assert "s1" in text and "s2" in text


def test_render_cdf_points():
    series = make_cdf(list(range(100)), label="pts")
    text = render_cdf_points(series)
    assert text.startswith("pts:")
    assert "F=0.50" in text


def test_format_percent():
    assert format_percent(0.5) == "50%"
    assert format_percent(0.123, digits=1) == "12.3%"

"""Figure behaviour on partial or degenerate dataset suites."""

import pytest

from repro.experiments.figures import FigureError, figure1, figure3, figure4


def test_figure1_with_subset(suite, min_samples):
    subset = {k: suite[k] for k in ["UW3"]}
    fig = figure1(subset, min_samples=min_samples)
    assert [s.label for s in fig.series] == ["UW3"]
    assert "UW3_fraction_improved" in fig.data


def test_figure3_with_subset(suite, min_samples):
    subset = {k: suite[k] for k in ["UW1", "D2"]}
    fig = figure3(subset, min_samples=min_samples)
    assert {s.label for s in fig.series} <= {"UW1", "D2"}


def test_figure4_requires_bandwidth_datasets(suite):
    with pytest.raises(FigureError):
        figure4({"UW3": suite["UW3"]})


def test_sparse_suite_produces_no_curves(suite):
    """An absurd min_samples filter empties every analysis; figures must
    degrade to empty series rather than crash."""
    fig = figure1(suite, min_samples=10**9)
    assert fig.series == []
    assert fig.text  # header still rendered

"""Tests for dataset provisioning and caching."""

import json
import os

import pytest

from repro.datasets import BuildConfig, BuildReport, table1_order
from repro.experiments.runner import (
    JOBS_ENV_VAR,
    cache_dir,
    provision_dataset,
    provision_datasets,
    resolve_jobs,
)


@pytest.fixture()
def tiny_cfg():
    return BuildConfig(seed=31, scale=0.02)


def test_cache_roundtrip(tmp_path, monkeypatch, tiny_cfg):
    monkeypatch.setenv("REPRO_CACHE_DIR", str(tmp_path / "cache"))
    first = provision_datasets(tiny_cfg)
    assert set(first) == {
        "D2-NA", "D2", "N2-NA", "N2", "UW1", "UW3", "UW4-A", "UW4-B",
    }
    # Cache files exist now.
    files = list((tmp_path / "cache").rglob("*.jsonl"))
    assert len(files) == 8
    # Second call loads from cache and agrees.
    second = provision_datasets(tiny_cfg)
    for name in first:
        assert first[name].n_measurements == second[name].n_measurements
        assert first[name].hosts == second[name].hosts


def test_corrupt_cache_triggers_rebuild(tmp_path, monkeypatch, tiny_cfg):
    monkeypatch.setenv("REPRO_CACHE_DIR", str(tmp_path / "cache"))
    first = provision_datasets(tiny_cfg)
    victim = next((tmp_path / "cache").rglob("UW3.jsonl"))
    victim.write_text("garbage\n")
    rebuilt = provision_datasets(tiny_cfg)
    assert rebuilt["UW3"].n_measurements == first["UW3"].n_measurements


def test_no_cache_mode(tmp_path, monkeypatch, tiny_cfg):
    monkeypatch.setenv("REPRO_CACHE_DIR", str(tmp_path / "cache"))
    provision_datasets(tiny_cfg, use_cache=False)
    assert not list((tmp_path / "cache").rglob("*.jsonl"))


def test_get_single_dataset(tmp_path, monkeypatch, tiny_cfg):
    monkeypatch.setenv("REPRO_CACHE_DIR", str(tmp_path / "cache"))
    uw3 = provision_dataset("UW3", tiny_cfg)
    assert uw3.meta.name == "UW3"
    with pytest.raises(KeyError):
        provision_dataset("NOPE", tiny_cfg)


def test_cache_dir_env(tmp_path, monkeypatch):
    monkeypatch.setenv("REPRO_CACHE_DIR", str(tmp_path / "elsewhere"))
    assert cache_dir() == tmp_path / "elsewhere"
    assert cache_dir().exists()


def _suite_files(root):
    return {p.name: p for p in root.rglob("*.jsonl")}


def test_deleted_dataset_rebuilds_only_itself(tmp_path, monkeypatch, tiny_cfg):
    """Invalidating one dataset must leave the other seven files untouched."""
    monkeypatch.setenv("REPRO_CACHE_DIR", str(tmp_path / "cache"))
    first = provision_datasets(tiny_cfg)
    files = _suite_files(tmp_path / "cache")
    mtimes = {name: p.stat().st_mtime_ns for name, p in files.items()}
    files["UW3.jsonl"].unlink()
    report = BuildReport()
    rebuilt = provision_datasets(tiny_cfg, report=report)
    assert rebuilt["UW3"].n_measurements == first["UW3"].n_measurements
    assert report.cache_misses == ["UW3"]
    assert len(report.cache_hits) == 7
    after = _suite_files(tmp_path / "cache")
    assert set(after) == set(files)
    for name, p in after.items():
        if name == "UW3.jsonl":
            continue
        assert p.stat().st_mtime_ns == mtimes[name], f"{name} was rewritten"


def test_truncated_cache_file_rebuilt(tmp_path, monkeypatch, tiny_cfg):
    """A crash-truncated JSONL file is rejected and transparently rebuilt."""
    monkeypatch.setenv("REPRO_CACHE_DIR", str(tmp_path / "cache"))
    first = provision_datasets(tiny_cfg)
    victim = _suite_files(tmp_path / "cache")["UW1.jsonl"]
    lines = victim.read_text().splitlines()
    victim.write_text("\n".join(lines[: len(lines) // 2]) + "\n")
    report = BuildReport()
    rebuilt = provision_datasets(tiny_cfg, report=report)
    assert "UW1" in report.cache_misses
    assert rebuilt["UW1"].n_measurements == first["UW1"].n_measurements
    # The repaired file round-trips cleanly now.
    third = provision_datasets(tiny_cfg, report=(rep3 := BuildReport()))
    assert rep3.cache_misses == []
    assert third["UW1"].n_measurements == first["UW1"].n_measurements


def test_stale_schema_cache_rebuilt(tmp_path, monkeypatch, tiny_cfg):
    """A cache written by another library version (drifted header schema)
    triggers a rebuild instead of a TypeError crash."""
    monkeypatch.setenv("REPRO_CACHE_DIR", str(tmp_path / "cache"))
    provision_datasets(tiny_cfg)
    victim = _suite_files(tmp_path / "cache")["D2.jsonl"]
    lines = victim.read_text().splitlines()
    header = json.loads(lines[0])
    header["meta"]["field_from_the_future"] = True
    lines[0] = json.dumps(header)
    victim.write_text("\n".join(lines) + "\n")
    report = BuildReport()
    rebuilt = provision_datasets(tiny_cfg, report=report)
    assert "D2" in report.cache_misses
    assert rebuilt["D2"].meta.name == "D2"


def test_group_sibling_kept_from_cache(tmp_path, monkeypatch, tiny_cfg):
    """Deleting D2.jsonl reruns the d2 group but must not rewrite the
    still-valid D2-NA.jsonl sibling."""
    monkeypatch.setenv("REPRO_CACHE_DIR", str(tmp_path / "cache"))
    provision_datasets(tiny_cfg)
    files = _suite_files(tmp_path / "cache")
    sibling_mtime = files["D2-NA.jsonl"].stat().st_mtime_ns
    files["D2.jsonl"].unlink()
    report = BuildReport()
    provision_datasets(tiny_cfg, report=report)
    assert report.cache_misses == ["D2"]
    assert files["D2-NA.jsonl"].stat().st_mtime_ns == sibling_mtime


def test_parallel_build_is_deterministic_and_multiprocess(
    tmp_path, monkeypatch, tiny_cfg
):
    """A cold parallel build uses multiple worker processes and writes
    bit-identical files to a serial build of the same config."""
    monkeypatch.setenv("REPRO_CACHE_DIR", str(tmp_path / "serial"))
    serial_report = BuildReport()
    serial = provision_datasets(tiny_cfg, jobs=1, report=serial_report)
    assert serial_report.worker_pids() == {os.getpid()}
    serial_files = _suite_files(tmp_path / "serial")

    monkeypatch.setenv("REPRO_CACHE_DIR", str(tmp_path / "parallel"))
    parallel_report = BuildReport()
    parallel = provision_datasets(tiny_cfg, jobs=2, report=parallel_report)
    pids = parallel_report.worker_pids()
    assert len(pids) >= 2, f"expected multiple build workers, got {pids}"
    assert os.getpid() not in pids
    parallel_files = _suite_files(tmp_path / "parallel")

    assert set(serial_files) == set(parallel_files)
    for name in serial_files:
        assert (
            serial_files[name].read_bytes() == parallel_files[name].read_bytes()
        ), f"{name} differs between serial and parallel builds"
    for name in table1_order():
        assert serial[name].hosts == parallel[name].hosts
        assert serial[name].n_measurements == parallel[name].n_measurements


def test_stale_lock_does_not_wedge_builds(tmp_path, monkeypatch, tiny_cfg):
    """A lock file left by a crashed (dead-PID) build is broken, not
    waited out."""
    monkeypatch.setenv("REPRO_CACHE_DIR", str(tmp_path / "cache"))
    suite = tmp_path / "cache" / f"seed{tiny_cfg.seed}-scale{tiny_cfg.scale:g}"
    suite.mkdir(parents=True)
    (suite / ".build.lock").write_text(json.dumps({"pid": 2**22 + 54321, "t": 0}))
    datasets = provision_datasets(tiny_cfg)
    assert len(datasets) == 8
    assert not (suite / ".build.lock").exists()


def test_resolve_jobs(monkeypatch):
    monkeypatch.delenv(JOBS_ENV_VAR, raising=False)
    assert resolve_jobs(4, 5) == 4
    assert resolve_jobs(16, 5) == 5      # clamped to the task count
    assert resolve_jobs(0, 5) == 1       # floor of one worker
    assert resolve_jobs(None, 0) == 1
    monkeypatch.setenv(JOBS_ENV_VAR, "3")
    assert resolve_jobs(None, 5) == 3
    assert resolve_jobs(2, 5) == 2       # explicit argument wins
    monkeypatch.setenv(JOBS_ENV_VAR, "not-a-number")
    with pytest.raises(ValueError):
        resolve_jobs(None, 5)


def test_report_phases_and_summary(tmp_path, monkeypatch, tiny_cfg):
    monkeypatch.setenv("REPRO_CACHE_DIR", str(tmp_path / "cache"))
    cold = BuildReport()
    provision_datasets(tiny_cfg, report=cold)
    assert cold.n_cache_misses == 8
    assert cold.phase_seconds("build") > 0
    assert cold.phase_seconds("save") > 0
    warm = BuildReport()
    provision_datasets(tiny_cfg, report=warm)
    assert warm.n_cache_hits == 8
    assert warm.n_cache_misses == 0
    assert warm.phase_seconds("load") > 0
    assert warm.phase_seconds("build") == 0
    summary = warm.summary()
    assert "8 cache hit(s)" in summary
    assert "load" in summary


def test_corrupt_cache_file_quarantined_not_reparsed(
    tmp_path, monkeypatch, tiny_cfg
):
    """An unreadable cache file is renamed to a .corrupt-<hash> corpse
    once, recorded in the report, and never re-parsed on later runs."""
    monkeypatch.setenv("REPRO_CACHE_DIR", str(tmp_path / "cache"))
    provision_datasets(tiny_cfg)
    victim = _suite_files(tmp_path / "cache")["UW3.jsonl"]
    victim.write_text("garbage\n")
    report = BuildReport()
    provision_datasets(tiny_cfg, report=report)
    corpses = list(victim.parent.glob("UW3.jsonl.corrupt-*"))
    assert len(corpses) == 1
    assert corpses[0].read_text() == "garbage\n"
    assert len(report.quarantined) == 1
    assert "UW3" in report.quarantined[0]
    # The rebuilt file is valid: the next run neither misses nor
    # quarantines anything, and the corpse is left alone.
    rep2 = BuildReport()
    provision_datasets(tiny_cfg, report=rep2)
    assert rep2.cache_misses == []
    assert rep2.quarantined == []
    assert list(victim.parent.glob("UW3.jsonl.corrupt-*")) == corpses


def test_missing_file_is_plain_miss_without_quarantine(
    tmp_path, monkeypatch, tiny_cfg
):
    monkeypatch.setenv("REPRO_CACHE_DIR", str(tmp_path / "cache"))
    provision_datasets(tiny_cfg)
    files = _suite_files(tmp_path / "cache")
    files["UW1.jsonl"].unlink()
    report = BuildReport()
    provision_datasets(tiny_cfg, report=report)
    assert report.cache_misses == ["UW1"]
    assert report.quarantined == []
    assert not list((tmp_path / "cache").rglob("*.corrupt-*"))

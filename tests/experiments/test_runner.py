"""Tests for dataset provisioning and caching."""

import pytest

from repro.datasets import BuildConfig
from repro.experiments.runner import cache_dir, get_dataset, get_datasets


@pytest.fixture()
def tiny_cfg():
    return BuildConfig(seed=31, scale=0.02)


def test_cache_roundtrip(tmp_path, monkeypatch, tiny_cfg):
    monkeypatch.setenv("REPRO_CACHE_DIR", str(tmp_path / "cache"))
    first = get_datasets(tiny_cfg)
    assert set(first) == {
        "D2-NA", "D2", "N2-NA", "N2", "UW1", "UW3", "UW4-A", "UW4-B",
    }
    # Cache files exist now.
    files = list((tmp_path / "cache").rglob("*.jsonl"))
    assert len(files) == 8
    # Second call loads from cache and agrees.
    second = get_datasets(tiny_cfg)
    for name in first:
        assert first[name].n_measurements == second[name].n_measurements
        assert first[name].hosts == second[name].hosts


def test_corrupt_cache_triggers_rebuild(tmp_path, monkeypatch, tiny_cfg):
    monkeypatch.setenv("REPRO_CACHE_DIR", str(tmp_path / "cache"))
    first = get_datasets(tiny_cfg)
    victim = next((tmp_path / "cache").rglob("UW3.jsonl"))
    victim.write_text("garbage\n")
    rebuilt = get_datasets(tiny_cfg)
    assert rebuilt["UW3"].n_measurements == first["UW3"].n_measurements


def test_no_cache_mode(tmp_path, monkeypatch, tiny_cfg):
    monkeypatch.setenv("REPRO_CACHE_DIR", str(tmp_path / "cache"))
    get_datasets(tiny_cfg, use_cache=False)
    assert not list((tmp_path / "cache").rglob("*.jsonl"))


def test_get_single_dataset(tmp_path, monkeypatch, tiny_cfg):
    monkeypatch.setenv("REPRO_CACHE_DIR", str(tmp_path / "cache"))
    uw3 = get_dataset("UW3", tiny_cfg)
    assert uw3.meta.name == "UW3"
    with pytest.raises(KeyError):
        get_dataset("NOPE", tiny_cfg)


def test_cache_dir_env(tmp_path, monkeypatch):
    monkeypatch.setenv("REPRO_CACHE_DIR", str(tmp_path / "elsewhere"))
    assert cache_dir() == tmp_path / "elsewhere"
    assert cache_dir().exists()

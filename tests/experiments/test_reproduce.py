"""Tests for the reproduction CLI driver."""


from repro.experiments.reproduce import PAPER_CLAIMS, main, run_all, write_markdown


def test_paper_claims_cover_all_artifacts():
    expected = {"table1", "table2", "table3"} | {f"figure{i}" for i in range(1, 17)}
    assert set(PAPER_CLAIMS) == expected


def test_run_all_with_only_filter(tmp_path, monkeypatch, capsys):
    monkeypatch.setenv("REPRO_CACHE_DIR", str(tmp_path / "cache"))
    artifacts = run_all(scale=0.02, seed=55, only={"table1", "figure1"})
    assert set(artifacts) == {"table1", "figure1"}
    out = capsys.readouterr().out
    assert "=== table1" in out
    assert "=== figure1" in out


def test_write_markdown(tmp_path, monkeypatch):
    monkeypatch.setenv("REPRO_CACHE_DIR", str(tmp_path / "cache"))
    artifacts = run_all(scale=0.02, seed=55, only={"table1"})
    out = tmp_path / "report.md"
    write_markdown(artifacts, str(out), scale=0.02, seed=55)
    text = out.read_text()
    assert "# Reproduction run" in text
    assert "## table1" in text
    assert "*Paper:*" in text


def test_main_cli(tmp_path, monkeypatch, capsys):
    monkeypatch.setenv("REPRO_CACHE_DIR", str(tmp_path / "cache"))
    rc = main(
        [
            "--scale", "0.02",
            "--seed", "55",
            "--only", "table2",
            "--markdown", str(tmp_path / "r.md"),
        ]
    )
    assert rc == 0
    assert (tmp_path / "r.md").exists()

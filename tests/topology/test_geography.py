"""Tests for the geographic embedding."""


import pytest
from hypothesis import given, strategies as st

from repro.topology.geography import (
    CITIES,
    FIBER_KM_PER_MS,
    UnknownCityError,
    cities_in_region,
    get_city,
    great_circle_km,
    mean_pairwise_distance_km,
    north_american_cities,
    propagation_delay_ms,
    world_cities,
)

city_names = st.sampled_from(sorted(CITIES))


def test_catalog_is_nonempty_and_unique():
    assert len(CITIES) > 50
    assert len({c.name for c in CITIES.values()}) == len(CITIES)


def test_catalog_is_north_america_heavy():
    na = north_american_cities()
    assert len(na) > len(CITIES) / 2
    assert all(c.is_north_america for c in na)


def test_get_city_known_and_unknown():
    assert get_city("seattle").region == "na-west"
    with pytest.raises(UnknownCityError):
        get_city("atlantis")


def test_cities_in_region():
    west = cities_in_region("na-west")
    assert west
    assert all(c.region == "na-west" for c in west)
    assert cities_in_region("no-such-region") == []


def test_known_distance_seattle_boston():
    # Seattle-Boston is roughly 4,000 km.
    km = great_circle_km(get_city("seattle"), get_city("boston"))
    assert 3800 < km < 4300


def test_known_distance_transatlantic():
    km = great_circle_km(get_city("new-york"), get_city("london"))
    assert 5300 < km < 5800


@given(a=city_names, b=city_names)
def test_distance_symmetry(a, b):
    ca, cb = get_city(a), get_city(b)
    assert great_circle_km(ca, cb) == pytest.approx(great_circle_km(cb, ca))


@given(a=city_names)
def test_distance_identity(a):
    assert great_circle_km(get_city(a), get_city(a)) == 0.0


@given(a=city_names, b=city_names, c=city_names)
def test_triangle_inequality(a, b, c):
    ca, cb, cc = get_city(a), get_city(b), get_city(c)
    direct = great_circle_km(ca, cc)
    detour = great_circle_km(ca, cb) + great_circle_km(cb, cc)
    assert direct <= detour + 1e-6


@given(a=city_names, b=city_names)
def test_propagation_delay_positive_and_scaled(a, b):
    ca, cb = get_city(a), get_city(b)
    delay = propagation_delay_ms(ca, cb)
    assert delay >= 0.05
    if a != b:
        # Delay never undercuts the speed-of-light bound.
        assert delay >= great_circle_km(ca, cb) / FIBER_KM_PER_MS - 1e-9


def test_propagation_delay_rejects_bad_circuity():
    with pytest.raises(ValueError):
        propagation_delay_ms(get_city("seattle"), get_city("boston"), circuity=0.9)


def test_propagation_delay_monotone_in_circuity():
    a, b = get_city("seattle"), get_city("miami")
    assert propagation_delay_ms(a, b, circuity=2.0) > propagation_delay_ms(
        a, b, circuity=1.2
    )


def test_mean_pairwise_distance_world_exceeds_na():
    na = mean_pairwise_distance_km(north_american_cities())
    world = mean_pairwise_distance_km(world_cities())
    assert world > na  # the paper's world datasets see longer latencies


def test_mean_pairwise_distance_requires_two():
    with pytest.raises(ValueError):
        mean_pairwise_distance_km([get_city("seattle")])


def test_fiber_speed_sanity():
    # Cross-US one-way delay should be ~20-40 ms.
    delay = propagation_delay_ms(get_city("seattle"), get_city("new-york"))
    assert 15.0 < delay < 45.0

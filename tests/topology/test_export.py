"""Tests for networkx export and structural statistics."""

import networkx as nx
import pytest

from repro.topology.export import as_graph, router_graph, topology_stats


@pytest.fixture(scope="module")
def asg(topo1999):
    return as_graph(topo1999)


@pytest.fixture(scope="module")
def rg(topo1999):
    return router_graph(topo1999)


def test_as_graph_structure(topo1999, asg):
    assert asg.number_of_nodes() == len(topo1999.ases)
    assert asg.number_of_edges() == len(topo1999.as_links)
    for asn, data in asg.nodes(data=True):
        assert data["tier"] in {"tier1", "transit", "stub"}
        assert data["n_cities"] >= 1


def test_as_graph_edge_attributes(topo1999, asg):
    link = topo1999.as_links[0]
    data = asg.edges[link.a, link.b]
    assert data["relationship"] == link.rel_ab.value
    assert data["exchange_cities"] == list(link.exchange_cities)


def test_as_graph_connected(asg):
    assert nx.is_connected(asg)


def test_router_graph_structure(topo1999, rg):
    assert rg.number_of_nodes() == len(topo1999.routers)
    assert rg.number_of_edges() == len(topo1999.links)
    for link in topo1999.links[:20]:
        data = rg.edges[link.u, link.v]
        assert data["prop_delay_ms"] == link.prop_delay_ms
        assert data["kind"] == link.kind.value


def test_router_graph_connected(rg):
    assert nx.is_connected(rg)


def test_topology_stats(topo1999):
    stats = topology_stats(topo1999)
    assert stats.n_ases == len(topo1999.ases)
    assert stats.as_connected
    # Tier-1s form a full peering clique in generated topologies.
    assert stats.tier1_clique_density == 1.0
    # Stubs have 1-2 providers.
    assert 1.0 <= stats.stub_mean_providers <= 2.0
    # Router-level reachability within a sane hop diameter.
    assert 4 <= stats.router_diameter_hops <= 40
    assert stats.as_mean_degree > 1.5

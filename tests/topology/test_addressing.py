"""Tests for IPv4 address assignment."""

import ipaddress

import pytest

from repro.topology.addressing import AddressingError, AddressPlan


@pytest.fixture(scope="module")
def plan(topo1999):
    return AddressPlan(topo1999)


def test_every_router_addressed(topo1999, plan):
    addresses = {plan.address_of(r.router_id) for r in topo1999.routers}
    assert len(addresses) == len(topo1999.routers)  # unique


def test_addresses_fall_in_as_prefix(topo1999, plan):
    for router in topo1999.routers[:100]:
        prefix = plan.as_prefix(router.asn)
        assert plan.address_of(router.router_id) in prefix


def test_as_prefixes_disjoint(topo1999, plan):
    asns = sorted(topo1999.ases)[:20]
    prefixes = [plan.as_prefix(a) for a in asns]
    for i, a in enumerate(prefixes):
        for b in prefixes[i + 1:]:
            assert not a.overlaps(b)


def test_reverse_and_forward_lookups(topo1999, plan):
    router = topo1999.routers[0]
    addr = plan.address_of(router.router_id)
    name = plan.reverse(addr)
    assert name.endswith(f"as{router.asn}.net")
    assert plan.resolve(name) == addr
    assert plan.reverse(str(addr)) == name


def test_unknown_lookups_raise(plan):
    with pytest.raises(AddressingError):
        plan.address_of(10**9)
    with pytest.raises(AddressingError):
        plan.reverse("192.0.2.1")
    with pytest.raises(AddressingError):
        plan.resolve("no.such.host")
    with pytest.raises(AddressingError):
        plan.as_prefix(10**9)


def test_format_hop(topo1999, plan):
    text = plan.format_hop(topo1999.routers[0].router_id)
    assert "(" in text and text.endswith(")")
    ipaddress.IPv4Address(text.split("(")[1].rstrip(")"))  # parses


def test_plan_is_deterministic(topo1999):
    a = AddressPlan(topo1999)
    b = AddressPlan(topo1999)
    for router in topo1999.routers[:50]:
        assert a.address_of(router.router_id) == b.address_of(router.router_id)

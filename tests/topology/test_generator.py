"""Tests for the topology generator."""

import pytest

from repro.topology import (
    ASTier,
    LinkKind,
    Relationship,
    TopologyConfig,
    TopologyError,
    generate_topology,
    place_hosts,
)


@pytest.fixture(scope="module")
def topo99():
    return generate_topology(TopologyConfig.for_era("1999", seed=1))


@pytest.fixture(scope="module")
def topo95():
    return generate_topology(TopologyConfig.for_era("1995", seed=1))


def test_config_presets():
    cfg99 = TopologyConfig.for_era("1999")
    cfg95 = TopologyConfig.for_era("1995")
    assert cfg95.n_tier1 < cfg99.n_tier1
    assert cfg95.capacity_scale < cfg99.capacity_scale
    with pytest.raises(ValueError):
        TopologyConfig.for_era("2024")
    with pytest.raises(ValueError):
        TopologyConfig.for_era("1999", nonsense_field=3)


def test_config_override():
    cfg = TopologyConfig.for_era("1999", n_tier1=4)
    assert cfg.n_tier1 == 4


def test_generation_is_deterministic():
    a = generate_topology(TopologyConfig.for_era("1999", seed=5))
    b = generate_topology(TopologyConfig.for_era("1999", seed=5))
    assert a.summary() == b.summary()
    assert [l.prop_delay_ms for l in a.links] == [l.prop_delay_ms for l in b.links]


def test_different_seeds_differ():
    a = generate_topology(TopologyConfig.for_era("1999", seed=5))
    b = generate_topology(TopologyConfig.for_era("1999", seed=6))
    assert [l.prop_delay_ms for l in a.links] != [l.prop_delay_ms for l in b.links]


def test_tier_populations(topo99):
    cfg = TopologyConfig.for_era("1999")
    tiers = {t: 0 for t in ASTier}
    for asys in topo99.ases.values():
        tiers[asys.tier] += 1
    assert tiers[ASTier.TIER1] == cfg.n_tier1
    assert tiers[ASTier.TRANSIT] == cfg.n_transit
    assert tiers[ASTier.STUB] == cfg.n_stub


def test_tier1_clique(topo99):
    tier1 = [a.asn for a in topo99.ases.values() if a.tier is ASTier.TIER1]
    for i, a in enumerate(tier1):
        for b in tier1[i + 1:]:
            rel = topo99.relationship(a, b)
            assert rel is Relationship.PEER
            assert topo99.exchange_links_between(a, b)


def test_stubs_have_providers(topo99):
    for asys in topo99.ases.values():
        if asys.tier is not ASTier.STUB:
            continue
        rels = [
            link.relationship_from(asys.asn)
            for link in topo99.as_neighbors(asys.asn)
        ]
        assert rels, f"{asys} has no neighbors"
        assert all(r is Relationship.PROVIDER for r in rels)


def test_no_customer_provider_cycles(topo99):
    # Tiers are strictly layered: providers always sit in an upper tier,
    # which rules out customer-provider cycles (Gao-Rexford safety).
    order = {ASTier.TIER1: 0, ASTier.TRANSIT: 1, ASTier.STUB: 2}
    for as_link in topo99.as_links:
        rel = as_link.rel_ab
        if rel is Relationship.CUSTOMER:  # b is a's customer
            assert order[topo99.ases[as_link.a].tier] <= order[topo99.ases[as_link.b].tier]
        elif rel is Relationship.PROVIDER:
            assert order[topo99.ases[as_link.b].tier] <= order[topo99.ases[as_link.a].tier]


def test_validation_passes(topo99, topo95):
    topo99.validate()
    topo95.validate()


def test_1995_is_smaller(topo99, topo95):
    assert len(topo95.ases) < len(topo99.ases)
    assert len(topo95.links) < len(topo99.links)


def test_circuity_noise_applied(topo99):
    # Some long-haul links must exceed the base circuity; none may fall
    # below the speed-of-light floor.
    from repro.topology.geography import propagation_delay_ms

    inflated = 0
    for link in topo99.links:
        u, v = topo99.routers[link.u], topo99.routers[link.v]
        base = propagation_delay_ms(u.city, v.city)
        assert link.prop_delay_ms >= base - 1e-9
        if link.prop_delay_ms > base * 1.05:
            inflated += 1
    assert inflated > len(topo99.links) / 10


def test_place_hosts_basics(topo99):
    hosts = place_hosts(topo99, 10, seed=3, north_america_only=True)
    assert len(hosts) == 10
    assert len({h.asn for h in hosts}) == 10  # distinct stub ASes
    for h in hosts:
        assert h.city.is_north_america
        assert topo99.ases[h.asn].tier is ASTier.STUB
        link = topo99.links[h.access_link]
        assert link.kind is LinkKind.ACCESS


def test_place_hosts_rate_limit_fraction(topo99):
    hosts = place_hosts(
        topo99, 20, seed=4, rate_limit_fraction=1.0, name_prefix="rl"
    )
    assert all(h.rate_limits_icmp for h in hosts)


def test_place_hosts_exhaustion():
    topo = generate_topology(TopologyConfig.for_era("1999", seed=9, n_stub=5))
    with pytest.raises(TopologyError):
        place_hosts(topo, 50, seed=1)

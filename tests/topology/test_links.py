"""Tests for the link model."""

import pytest

from repro.topology.links import (
    BASELINE_UTILIZATION,
    DEFAULT_CAPACITY_MBPS,
    Link,
    LinkKind,
)


def make_link(**overrides):
    defaults = dict(
        link_id=0,
        u=1,
        v=2,
        kind=LinkKind.BACKBONE,
        prop_delay_ms=5.0,
        capacity_mbps=155.0,
        base_utilization=0.3,
    )
    defaults.update(overrides)
    return Link(**defaults)


def test_all_kinds_have_defaults():
    for kind in LinkKind:
        assert DEFAULT_CAPACITY_MBPS[kind] > 0
        lo, hi = BASELINE_UTILIZATION[kind]
        assert 0.0 <= lo < hi < 1.0


def test_exchange_runs_hotter_than_backbone():
    # The 1990s congested-NAP structure the paper leans on.
    assert BASELINE_UTILIZATION[LinkKind.EXCHANGE][1] > BASELINE_UTILIZATION[
        LinkKind.BACKBONE
    ][1]


def test_link_validation():
    with pytest.raises(ValueError):
        make_link(u=1, v=1)
    with pytest.raises(ValueError):
        make_link(prop_delay_ms=0.0)
    with pytest.raises(ValueError):
        make_link(capacity_mbps=-1.0)
    with pytest.raises(ValueError):
        make_link(base_utilization=1.0)


def test_link_other():
    link = make_link()
    assert link.other(1) == 2
    assert link.other(2) == 1
    with pytest.raises(ValueError):
        link.other(3)


def test_transmission_delay():
    # 1500 B at 155 Mbit/s is ~77 microseconds.
    link = make_link(capacity_mbps=155.0)
    assert link.transmission_delay_ms == pytest.approx(1500 * 8 / 155_000)
    slow = make_link(capacity_mbps=10.0)
    assert slow.transmission_delay_ms > link.transmission_delay_ms

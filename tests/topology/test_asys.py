"""Tests for AS records and business relationships."""

import pytest

from repro.topology.asys import (
    ASLink,
    ASTier,
    AutonomousSystem,
    LOCAL_PREF,
    Relationship,
)
from repro.topology.geography import get_city


def test_relationship_inverse_roundtrip():
    for rel in Relationship:
        assert rel.inverse().inverse() is rel


def test_relationship_inverse_semantics():
    assert Relationship.CUSTOMER.inverse() is Relationship.PROVIDER
    assert Relationship.PROVIDER.inverse() is Relationship.CUSTOMER
    assert Relationship.PEER.inverse() is Relationship.PEER
    assert Relationship.SIBLING.inverse() is Relationship.SIBLING


def test_local_pref_ordering():
    # Customers are revenue: they beat peers, which beat providers.
    assert (
        LOCAL_PREF[Relationship.CUSTOMER]
        > LOCAL_PREF[Relationship.PEER]
        > LOCAL_PREF[Relationship.PROVIDER]
    )


def test_autonomous_system_rejects_negative_asn():
    with pytest.raises(ValueError):
        AutonomousSystem(asn=-1, name="bad", tier=ASTier.STUB)


def test_autonomous_system_has_pop_in():
    seattle = get_city("seattle")
    asys = AutonomousSystem(asn=1, name="a", tier=ASTier.STUB, cities=[seattle])
    assert asys.has_pop_in(seattle)
    assert not asys.has_pop_in(get_city("boston"))


def test_as_link_validation():
    with pytest.raises(ValueError):
        ASLink(a=1, b=1, rel_ab=Relationship.PEER, exchange_cities=("seattle",))
    with pytest.raises(ValueError):
        ASLink(a=1, b=2, rel_ab=Relationship.PEER, exchange_cities=())


def test_as_link_relationship_from_both_sides():
    # b is a's customer.
    link = ASLink(a=1, b=2, rel_ab=Relationship.CUSTOMER, exchange_cities=("chicago",))
    assert link.relationship_from(1) is Relationship.CUSTOMER
    assert link.relationship_from(2) is Relationship.PROVIDER
    with pytest.raises(ValueError):
        link.relationship_from(3)


def test_as_link_other():
    link = ASLink(a=1, b=2, rel_ab=Relationship.PEER, exchange_cities=("chicago",))
    assert link.other(1) == 2
    assert link.other(2) == 1
    with pytest.raises(ValueError):
        link.other(9)

"""Tests for the Topology container."""

import pytest

from repro.topology.asys import ASLink, ASTier, AutonomousSystem, Relationship
from repro.topology.geography import get_city
from repro.topology.links import LinkKind
from repro.topology.network import Topology, TopologyError
from repro.topology.router import Host, RouterRole


@pytest.fixture()
def tiny() -> Topology:
    """Two single-city ASes joined by one exchange."""
    topo = Topology()
    seattle = get_city("seattle")
    chicago = get_city("chicago")
    topo.add_as(AutonomousSystem(asn=1, name="a", tier=ASTier.TIER1, cities=[seattle, chicago]))
    topo.add_as(AutonomousSystem(asn=2, name="b", tier=ASTier.STUB, cities=[chicago]))
    c1 = topo.add_router(1, seattle, RouterRole.CORE)
    c2 = topo.add_router(1, chicago, RouterRole.CORE)
    c3 = topo.add_router(2, chicago, RouterRole.CORE)
    topo.add_link(c1.router_id, c2.router_id, LinkKind.BACKBONE)
    b1 = topo.add_router(1, chicago, RouterRole.BORDER)
    b2 = topo.add_router(2, chicago, RouterRole.BORDER)
    topo.add_link(b1.router_id, c2.router_id, LinkKind.METRO)
    topo.add_link(b2.router_id, c3.router_id, LinkKind.METRO)
    x = topo.add_link(b1.router_id, b2.router_id, LinkKind.EXCHANGE)
    topo.add_exchange_link(x)
    topo.add_as_link(
        ASLink(a=1, b=2, rel_ab=Relationship.CUSTOMER, exchange_cities=("chicago",))
    )
    return topo


def test_duplicate_asn_rejected(tiny):
    with pytest.raises(TopologyError):
        tiny.add_as(AutonomousSystem(asn=1, name="dup", tier=ASTier.STUB))


def test_router_in_unknown_as_rejected(tiny):
    with pytest.raises(TopologyError):
        tiny.add_router(99, get_city("seattle"), RouterRole.CORE)


def test_duplicate_core_router_rejected(tiny):
    with pytest.raises(TopologyError):
        tiny.add_router(1, get_city("seattle"), RouterRole.CORE)


def test_link_range_checked(tiny):
    with pytest.raises(TopologyError):
        tiny.add_link(0, 999, LinkKind.BACKBONE)


def test_core_router_lookup(tiny):
    assert tiny.has_core_router(1, "seattle")
    assert not tiny.has_core_router(2, "seattle")
    with pytest.raises(TopologyError):
        tiny.core_router(2, "seattle")


def test_exchange_links_between(tiny):
    links = tiny.exchange_links_between(1, 2)
    assert len(links) == 1
    assert links[0].kind is LinkKind.EXCHANGE
    assert tiny.exchange_links_between(1, 99) == []


def test_exchange_link_validation(tiny):
    r1 = tiny.routers_of(1)
    internal = tiny.add_link(r1[0], r1[1], LinkKind.METRO)
    with pytest.raises(TopologyError):
        tiny.add_exchange_link(internal)  # not an EXCHANGE link


def test_relationship_lookup(tiny):
    assert tiny.relationship(1, 2) is Relationship.CUSTOMER
    assert tiny.relationship(2, 1) is Relationship.PROVIDER
    assert tiny.relationship(1, 99) is None


def test_host_registration_and_lookup(tiny):
    nic = tiny.add_router(2, get_city("chicago"), RouterRole.ACCESS)
    access = tiny.add_link(nic.router_id, tiny.core_router(2, "chicago"), LinkKind.ACCESS)
    host = Host(
        host_id=0,
        name="h0",
        city=get_city("chicago"),
        asn=2,
        access_router=nic.router_id,
        access_link=access.link_id,
    )
    tiny.add_host(host)
    assert tiny.host("h0") is host
    assert tiny.host_names() == ["h0"]
    with pytest.raises(TopologyError):
        tiny.add_host(host)  # duplicate name
    with pytest.raises(TopologyError):
        tiny.host("nope")


def test_validate_passes_on_consistent_topology(tiny):
    tiny.validate()


def test_validate_catches_as_link_without_exchange():
    topo = Topology()
    seattle = get_city("seattle")
    topo.add_as(AutonomousSystem(asn=1, name="a", tier=ASTier.STUB, cities=[seattle]))
    topo.add_as(AutonomousSystem(asn=2, name="b", tier=ASTier.STUB, cities=[seattle]))
    topo.add_router(1, seattle, RouterRole.CORE)
    topo.add_router(2, seattle, RouterRole.CORE)
    topo.add_as_link(
        ASLink(a=1, b=2, rel_ab=Relationship.PEER, exchange_cities=("seattle",))
    )
    with pytest.raises(TopologyError):
        topo.validate()


def test_validate_catches_host_as_mismatch(tiny):
    nic = tiny.add_router(2, get_city("chicago"), RouterRole.ACCESS)
    access = tiny.add_link(nic.router_id, tiny.core_router(2, "chicago"), LinkKind.ACCESS)
    tiny.add_host(
        Host(
            host_id=0,
            name="bad",
            city=get_city("chicago"),
            asn=1,  # claims AS1 but attaches to an AS2 router
            access_router=nic.router_id,
            access_link=access.link_id,
        )
    )
    with pytest.raises(TopologyError):
        tiny.validate()


def test_summary_counts(tiny):
    counts = tiny.summary()
    assert counts["ases"] == 2
    assert counts["routers"] == len(tiny.routers)
    assert counts["links"] == len(tiny.links)

"""Differential tests: columnar substrate vs the object backend.

The columnar path is only trustworthy if it is *indistinguishable* from
the object model it mirrors:

- ``from_topology`` → ``to_topology`` must round-trip **byte-identically**
  (compared via pickle) across seeds, eras, and host placement;
- the columnar solver must be route-for-route identical to
  :class:`~repro.routing.bgp.BGPTable` (the object oracle), including on
  scale-generated topologies converted back to objects;
- sharded shared-memory convergence must equal the serial arrays bit
  for bit;
- the CSR IGP matrix must reproduce every
  :class:`~repro.routing.igp.IGPTable` cost;
- streamed datasets must be byte-identical to in-memory builds; and
- streaming must hold peak memory bounded at 10k-AS scale.

Structural features the staged columnar solver cannot order (siblings,
customer-provider cycles) must refuse loudly so callers fall back to the
object fixpoint, mirroring ``tests/routing/test_bgp_equivalence.py``.
"""

import json
import pickle
import tracemalloc

import numpy as np
import pytest

from repro.datasets.io import DatasetIOError
from repro.datasets.stream import (
    build_route_summaries,
    iter_route_summaries,
    load_route_summaries,
    write_route_summaries,
)
from repro.routing.bgp import BGPTable
from repro.routing.columnar import (
    ColumnarUnsupported,
    build_solver_index,
    converge_all,
    igp_matrix,
)
from repro.routing.igp import IGPSuite
from repro.topology import TopologyConfig, generate_topology
from repro.topology.columnar import from_topology
from repro.topology.generator import place_hosts
from repro.topology.scale import ScaleError, generate_topology_arrays, resolve_preset
from repro.topology.asys import Relationship

from tests.routing.test_bgp_equivalence import _gadget

SEEDS = [3, 11, 1999]
ERAS = ["1995", "1999"]


def _topo(era, seed, hosts=0):
    topo = generate_topology(TopologyConfig.for_era(era, seed=seed))
    if hosts:
        place_hosts(topo, hosts, seed=seed)
    return topo


# -- object <-> columnar round-trip --------------------------------------


@pytest.mark.parametrize("seed", SEEDS)
@pytest.mark.parametrize("era", ERAS)
def test_round_trip_is_byte_identical(era, seed):
    topo = _topo(era, seed)
    restored = from_topology(topo).to_topology()
    assert pickle.dumps(restored) == pickle.dumps(topo)


def test_round_trip_preserves_hosts():
    topo = _topo("1999", 1999, hosts=12)
    restored = from_topology(topo).to_topology()
    assert pickle.dumps(restored) == pickle.dumps(topo)


def test_round_trip_restored_topology_is_usable():
    """The restored object is live, not just structurally equal."""
    topo = from_topology(_topo("1999", 3)).to_topology()
    topo.validate()
    table = BGPTable(topo)
    dest = min(topo.ases)
    table.converge_all([dest])
    assert table.route(max(topo.ases), dest) is not None


# -- route-for-route identity with the object oracle ---------------------


def _assert_routes_match(topo, arrays, dests):
    oracle = BGPTable(topo)
    oracle.converge_all(dests)
    table = converge_all(arrays, dests, jobs=1)
    for dest in dests:
        for asn in sorted(topo.ases):
            assert table.route(asn, dest) == oracle.route(asn, dest), (
                f"route divergence at AS{asn} -> AS{dest}"
            )


@pytest.mark.parametrize("seed", SEEDS)
@pytest.mark.parametrize("era", ERAS)
def test_columnar_routes_match_object_oracle(era, seed):
    topo = _topo(era, seed)
    arrays = from_topology(topo)
    _assert_routes_match(topo, arrays, sorted(topo.ases))


def test_scale_generated_routes_match_object_oracle():
    """Scale-generated arrays vs object solver on the converted topology."""
    arrays = generate_topology_arrays(resolve_preset("1k", seed=7))
    topo = arrays.to_topology()
    rng = np.random.default_rng(0)
    dests = sorted(
        int(a) for a in rng.choice(arrays.as_asn, size=24, replace=False)
    )
    oracle = BGPTable(topo)
    oracle.converge_all(dests)
    table = converge_all(arrays, dests, jobs=1)
    srcs = sorted(int(a) for a in rng.choice(arrays.as_asn, size=64, replace=False))
    for dest in dests:
        for asn in srcs:
            assert table.route(asn, dest) == oracle.route(asn, dest)


@pytest.mark.parametrize("seed", [3, 1999])
def test_sharded_convergence_equals_serial(seed):
    arrays = from_topology(_topo("1999", seed))
    dests = [int(a) for a in arrays.as_asn]
    serial = converge_all(arrays, dests, jobs=1)
    sharded = converge_all(arrays, dests, jobs=2, block=16)
    assert np.array_equal(serial.lens, sharded.lens)
    assert np.array_equal(serial.next_idx, sharded.next_idx)
    assert np.array_equal(serial.via, sharded.via)


def test_siblings_are_unsupported():
    topo = _gadget(3, [(1, 2, Relationship.SIBLING), (2, 3, Relationship.CUSTOMER)])
    with pytest.raises(ColumnarUnsupported):
        build_solver_index(from_topology(topo))


def test_provider_cycle_is_unsupported():
    topo = _gadget(
        3,
        [
            (1, 2, Relationship.CUSTOMER),
            (2, 3, Relationship.CUSTOMER),
            (3, 1, Relationship.CUSTOMER),
        ],
    )
    with pytest.raises(ColumnarUnsupported):
        build_solver_index(from_topology(topo))


# -- IGP on CSR ----------------------------------------------------------


@pytest.mark.parametrize("era", ERAS)
def test_igp_matrix_matches_object_tables(era):
    topo = _topo(era, 3)
    arrays = from_topology(topo)
    suite = IGPSuite(topo)
    asn_index = arrays.asn_index()
    for asn in sorted(topo.ases):
        router_ids, dist = igp_matrix(arrays, int(asn_index[asn]))
        table = suite.table(asn)
        assert sorted(router_ids) == sorted(topo.routers_of(asn))
        pos = {r: i for i, r in enumerate(router_ids)}
        for src in topo.routers_of(asn):
            for dst in topo.routers_of(asn):
                assert dist[pos[src], pos[dst]] == pytest.approx(
                    table.cost(src, dst)
                ), f"IGP cost divergence in AS{asn}: {src}->{dst}"


# -- streamed datasets ---------------------------------------------------


def test_streamed_file_is_byte_identical_to_in_memory(tmp_path):
    arrays = from_topology(_topo("1999", 3))
    path = tmp_path / "summaries.jsonl"
    n = write_route_summaries(arrays, path, block=16, label="t")
    header, records = load_route_summaries(path)
    reference = build_route_summaries(arrays, block=16)
    assert n == len(reference) == arrays.n_as
    assert records == reference
    assert header["n_dests"] == arrays.n_as
    # Byte-level: re-serializing what we loaded reproduces the record
    # lines exactly (canonical JSON both ways).
    lines = path.read_text(encoding="utf-8").splitlines()
    for line, record in zip(lines[1:-1], reference):
        assert line == json.dumps(record, sort_keys=True, separators=(",", ":"))


def test_stream_is_block_size_invariant():
    arrays = from_topology(_topo("1995", 11))
    dests = [int(a) for a in arrays.as_asn][::3]
    a = list(iter_route_summaries(arrays, dests, block=4))
    b = list(iter_route_summaries(arrays, dests, block=64))
    assert a == b


def test_truncated_stream_is_detected(tmp_path):
    arrays = from_topology(_topo("1995", 3))
    path = tmp_path / "summaries.jsonl"
    write_route_summaries(arrays, path, block=32)
    lines = path.read_text(encoding="utf-8").splitlines()
    truncated = tmp_path / "truncated.jsonl"
    truncated.write_text("\n".join(lines[:-1]) + "\n", encoding="utf-8")
    with pytest.raises(DatasetIOError, match="trailer"):
        load_route_summaries(truncated)
    wrong_kind = tmp_path / "wrong.jsonl"
    wrong_kind.write_text('{"kind":"other"}\n', encoding="utf-8")
    with pytest.raises(DatasetIOError, match="kind"):
        load_route_summaries(wrong_kind)


def test_streaming_memory_stays_bounded_at_10k(tmp_path):
    """Peak traced allocation is O(n_as * block), not O(n_as * dests)."""
    arrays = generate_topology_arrays(resolve_preset("10k", seed=1))
    dests = [int(a) for a in arrays.as_asn[:: arrays.n_as // 256]]
    index = build_solver_index(arrays)
    tracemalloc.start()
    for _ in iter_route_summaries(arrays, dests, block=64, index=index):
        pass
    _, peak = tracemalloc.get_traced_memory()
    tracemalloc.stop()
    # A materialized (n_as x dests) int64 table alone would be ~600 MB at
    # this scale; block-wise streaming stays under a small fraction of it.
    assert peak < 200 * 1024 * 1024, f"peak {peak / 1e6:.0f} MB"


# -- generate_topology(scale=...) API ------------------------------------


def test_generate_topology_scale_returns_arrays():
    arrays = generate_topology(scale="1k", seed=5)
    assert arrays.n_as == 1000
    arrays.to_topology().validate()


def test_generate_topology_scale_is_deterministic():
    a = generate_topology(scale="1k", seed=5)
    b = generate_topology(scale="1k", seed=5)
    assert pickle.dumps(a) == pickle.dumps(b)


def test_generate_topology_scale_conflicts_with_config():
    with pytest.raises(ValueError, match="either config or scale"):
        generate_topology(TopologyConfig.for_era("1999", seed=1), scale="1k")


def test_unknown_scale_preset_raises():
    with pytest.raises(ScaleError):
        resolve_preset("galactic")
    with pytest.raises(ScaleError):
        generate_topology(scale="galactic")


def test_paper_presets_resolve_to_eras():
    assert resolve_preset("paper-1999") == "1999"
    assert resolve_preset("paper-1995") == "1995"

"""End-to-end integration: the paper's headline claims at reduced scale.

These tests run the complete pipeline (topology → routing → collection →
analysis) for one UW-style and one 1995-style dataset and assert the
*shape* of the paper's findings.  Absolute numbers differ from the paper
(different Internet, different hosts); the qualitative structure must not.
"""

import numpy as np
import pytest

from repro.core import (
    Comparison,
    Metric,
    analyze,
    analyze_bandwidth,
    decompose_improvements,
    group_counts,
    LossComposition,
)
from repro.datasets import BuildConfig, build_n2, build_uw3

SCALE = 0.15
MIN_SAMPLES = 5


@pytest.fixture(scope="module")
def uw3():
    dataset, _env = build_uw3(BuildConfig(seed=424, scale=SCALE))
    return dataset


@pytest.fixture(scope="module")
def n2():
    dataset, _na = build_n2(BuildConfig(seed=424, scale=SCALE))
    return dataset


def test_headline_rtt_band(uw3):
    """'For 30 to 55 percent of the paths measured, there is an alternate
    path ... resulting in a smaller round-trip time.'"""
    result = analyze(uw3, Metric.RTT, min_samples=MIN_SAMPLES)
    assert len(result) > 500
    assert 0.25 <= result.fraction_improved() <= 0.65


def test_significant_rtt_improvements_exist(uw3):
    """'For a smaller fraction, there was a significant improvement of
    20 ms or more.'"""
    result = analyze(uw3, Metric.RTT, min_samples=MIN_SAMPLES)
    frac20 = result.fraction_improved_by(20.0)
    assert 0.0 < frac20 < result.fraction_improved()


def test_headline_loss_band(uw3):
    """'75 to 85 percent of the paths have alternates with a lower loss
    rate' (allowing slack for the reduced scale)."""
    result = analyze(uw3, Metric.LOSS, min_samples=MIN_SAMPLES)
    assert 0.5 <= result.fraction_improved() <= 0.98


def test_headline_bandwidth_band(n2):
    """'70 to 80 percent of the paths have alternates with improved
    bandwidth', optimistic and pessimistic bracketing the truth."""
    pes = analyze_bandwidth(n2, LossComposition.PESSIMISTIC)
    opt = analyze_bandwidth(n2, LossComposition.OPTIMISTIC)
    assert 0.4 <= pes.fraction_improved() <= 0.95
    assert opt.fraction_improved() >= pes.fraction_improved()


def test_bandwidth_factor_three_tail(n2):
    """'For at least 10% to 20% of the paths the potential bandwidth
    improvement is at least a factor of three.'"""
    opt = analyze_bandwidth(n2, LossComposition.OPTIMISTIC)
    ratios = opt.ratios()
    assert np.mean(ratios > 3.0) >= 0.05


def test_ttest_classification_not_degenerate(uw3):
    """Table 2's structure: all three classes populated; 'better' and
    'worse' not wildly asymmetric."""
    result = analyze(uw3, Metric.RTT, min_samples=MIN_SAMPLES)
    pct = result.classification_percentages()
    assert pct[Comparison.BETTER] > 5.0
    assert pct[Comparison.WORSE] > 5.0
    assert pct[Comparison.INDETERMINATE] > 5.0


def test_propagation_inefficiency_remains(uw3):
    """Figure 15: 'superior alternate paths still exist for 50% of the
    paths' under the propagation-delay metric (wide tolerance here)."""
    result = analyze(uw3, Metric.PROP_DELAY, min_samples=MIN_SAMPLES)
    assert 0.25 <= result.fraction_improved() <= 0.75


def test_congestion_and_propagation_both_matter(uw3):
    """Figure 16's conclusion: 'neither one can properly be said to be
    the single dominant factor' — groups 4, 5, and 6 all populated."""
    points = decompose_improvements(uw3, min_samples=MIN_SAMPLES)
    counts = group_counts(points)
    from repro.core import DelayGroup

    improved = counts[DelayGroup.G4] + counts[DelayGroup.G5] + counts[DelayGroup.G6]
    assert improved > 0
    assert counts[DelayGroup.G4] > 0          # propagation contributes
    assert counts[DelayGroup.G6] > 0          # congestion-avoidance contributes
    assert counts[DelayGroup.G6] >= counts[DelayGroup.G3]


def test_alternates_route_around_worst_paths(uw3):
    """The worst default paths should essentially always be improvable."""
    result = analyze(uw3, Metric.RTT, min_samples=MIN_SAMPLES)
    comps = sorted(result.comparisons, key=lambda c: -c.default_value)
    worst_decile = comps[: max(len(comps) // 10, 1)]
    improved = np.mean([c.improvement > 0 for c in worst_decile])
    assert improved > 0.8

"""Tests for overlay EWMA estimates."""


import pytest
from hypothesis import given, strategies as st

from repro.overlay.state import OverlayState


def test_state_validation():
    with pytest.raises(ValueError):
        OverlayState(["a", "b"], alpha=0.0)
    with pytest.raises(ValueError):
        OverlayState(["a", "b"], alpha=1.5)
    with pytest.raises(ValueError):
        OverlayState(["only"])


def test_initial_estimates_unusable():
    state = OverlayState(["a", "b", "c"])
    assert not state.estimate(("a", "b")).usable
    assert state.usable_pairs() == []


def test_first_sample_initializes():
    state = OverlayState(["a", "b"], alpha=0.5)
    state.record_probe(("a", "b"), 100.0)
    est = state.estimate(("a", "b"))
    assert est.usable
    assert est.rtt_ms == 100.0
    assert est.loss == 0.0
    assert est.samples == 1


def test_ewma_update():
    state = OverlayState(["a", "b"], alpha=0.5)
    state.record_probe(("a", "b"), 100.0)
    state.record_probe(("a", "b"), 200.0)
    assert state.estimate(("a", "b")).rtt_ms == pytest.approx(150.0)


def test_loss_updates_without_rtt():
    state = OverlayState(["a", "b"], alpha=0.5)
    state.record_probe(("a", "b"), 100.0)
    state.record_probe(("a", "b"), float("nan"))
    est = state.estimate(("a", "b"))
    assert est.rtt_ms == 100.0  # lost probes don't move the RTT estimate
    assert est.loss == pytest.approx(0.5)


def test_all_lost_link_stays_unusable():
    state = OverlayState(["a", "b"])
    for _ in range(5):
        state.record_probe(("a", "b"), float("nan"))
    est = state.estimate(("a", "b"))
    assert not est.usable
    assert est.loss > 0.8


def test_unknown_pair_raises():
    state = OverlayState(["a", "b"])
    with pytest.raises(KeyError):
        state.estimate(("a", "z"))


@given(
    alpha=st.floats(min_value=0.05, max_value=1.0),
    rtts=st.lists(st.floats(min_value=1.0, max_value=1000.0), min_size=1, max_size=40),
)
def test_ewma_stays_within_sample_range(alpha, rtts):
    state = OverlayState(["a", "b"], alpha=alpha)
    for r in rtts:
        state.record_probe(("a", "b"), r)
    est = state.estimate(("a", "b"))
    assert min(rtts) - 1e-9 <= est.rtt_ms <= max(rtts) + 1e-9
    assert 0.0 <= est.loss <= 1.0

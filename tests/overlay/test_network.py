"""Tests for the overlay network driver."""

import pytest

from repro.netsim import SECONDS_PER_DAY
from repro.overlay import OverlayNetwork


@pytest.fixture(scope="module")
def overlay(topo1999, conditions):
    hosts = [
        h for h in topo1999.host_names()
        if not topo1999.host(h).rate_limits_icmp
    ][:8]
    return OverlayNetwork(
        topo1999, conditions, hosts, probe_interval_s=120.0, seed=9
    )


def test_constructor_validation(topo1999, conditions):
    with pytest.raises(ValueError):
        OverlayNetwork(
            topo1999, conditions, topo1999.host_names()[:4], probe_interval_s=0.0
        )


def test_probe_rounds_populate_estimates(overlay):
    overlay.probe_all(SECONDS_PER_DAY)
    usable = overlay.state.usable_pairs()
    n = len(overlay.hosts)
    # Nearly every pair should have a successful probe after one round.
    assert len(usable) > 0.8 * n * (n - 1)


def test_advance_runs_scheduled_rounds(overlay):
    overlay.probe_all(SECONDS_PER_DAY)
    before = overlay.state.estimate(
        (overlay.hosts[0], overlay.hosts[1])
    ).samples
    overlay.advance_to(SECONDS_PER_DAY + 10 * overlay.probe_interval_s)
    after = overlay.state.estimate((overlay.hosts[0], overlay.hosts[1])).samples
    assert after >= before + 9


def test_flow_outcome_consistency(overlay):
    t = 1.25 * SECONDS_PER_DAY
    outcome = overlay.send_flow(overlay.hosts[0], overlay.hosts[2], t)
    assert outcome.direct_rtt_ms > 0
    assert outcome.overlay_rtt_ms > 0
    # The oracle is at least as good as both direct and the chosen route.
    assert outcome.oracle_rtt_ms <= outcome.direct_rtt_ms + 1e-9
    assert outcome.oracle_rtt_ms <= outcome.overlay_rtt_ms + 1e-9
    if outcome.route.is_direct:
        assert outcome.overlay_rtt_ms == outcome.direct_rtt_ms


def test_evaluation_aggregates(overlay):
    evaluation = overlay.evaluate(
        t0=1.5 * SECONDS_PER_DAY, duration_s=4 * 3600.0, n_flows=150
    )
    assert len(evaluation) == 150
    assert evaluation.mean_oracle_rtt() <= evaluation.mean_direct_rtt() + 1e-9
    assert evaluation.mean_oracle_rtt() <= evaluation.mean_overlay_rtt() + 1e-9
    assert 0.0 <= evaluation.deflection_rate() <= 1.0
    assert 0.0 <= evaluation.win_rate() <= 1.0


def test_overlay_beats_direct_on_average(topo1999, conditions):
    """The Detour hypothesis: online relaying with stale estimates still
    recovers a solid share of the oracle gain.  Uses a fresh 12-host
    overlay evaluated across peak hours (Wednesday 10:00-16:00 PST),
    where the congestion diversity the overlay exploits is largest."""
    fresh = OverlayNetwork(
        topo1999, conditions, topo1999.host_names(),
        probe_interval_s=120.0, seed=9,
    )
    evaluation = fresh.evaluate(
        t0=2.0 * SECONDS_PER_DAY + 18 * 3600.0,
        duration_s=6 * 3600.0,
        n_flows=300,
    )
    assert evaluation.mean_overlay_rtt() < evaluation.mean_direct_rtt()
    assert evaluation.gain_capture() > 0.3
    assert evaluation.win_rate() > 0.5


def test_evaluate_validates_flows(overlay):
    with pytest.raises(ValueError):
        overlay.evaluate(t0=0.0, duration_s=100.0, n_flows=0)


def test_hysteresis_reduces_deflections(topo1999, conditions):
    hosts = [
        h for h in topo1999.host_names()
        if not topo1999.host(h).rate_limits_icmp
    ][:8]

    def run(hysteresis):
        overlay = OverlayNetwork(
            topo1999, conditions, hosts,
            probe_interval_s=120.0, hysteresis=hysteresis, seed=11,
        )
        return overlay.evaluate(
            t0=SECONDS_PER_DAY, duration_s=2 * 3600.0, n_flows=120
        ).deflection_rate()

    assert run(0.5) <= run(0.0) + 1e-9

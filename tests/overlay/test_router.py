"""Tests for overlay route selection."""

import math

import pytest

from repro.overlay.router import OverlayRouter
from repro.overlay.state import OverlayState


def _state(estimates: dict[tuple[str, str], float], hosts=None) -> OverlayState:
    hosts = hosts or ["a", "b", "c", "d"]
    state = OverlayState(hosts, alpha=1.0)
    for pair, rtt in estimates.items():
        state.record_probe(pair, rtt)
    return state


def test_router_validation():
    state = _state({})
    with pytest.raises(ValueError):
        OverlayRouter(state, hysteresis=-0.1)
    with pytest.raises(ValueError):
        OverlayRouter(state, max_relays=3)


def test_prefers_direct_when_best():
    state = _state({("a", "b"): 50.0, ("a", "c"): 40.0, ("c", "b"): 40.0})
    route = OverlayRouter(state).select("a", "b")
    assert route.is_direct
    assert route.estimated_rtt_ms == 50.0


def test_deflects_through_clear_winner():
    state = _state({("a", "b"): 200.0, ("a", "c"): 40.0, ("c", "b"): 40.0})
    route = OverlayRouter(state, hysteresis=0.1).select("a", "b")
    assert route.relays == ("c",)
    assert route.estimated_rtt_ms == pytest.approx(80.0)
    assert route.legs == (("a", "c"), ("c", "b"))


def test_hysteresis_blocks_marginal_wins():
    state = _state({("a", "b"): 100.0, ("a", "c"): 48.0, ("c", "b"): 48.0})
    # 96 < 100, but not by 10%.
    route = OverlayRouter(state, hysteresis=0.1).select("a", "b")
    assert route.is_direct
    # With no hysteresis the 4% win is taken.
    route = OverlayRouter(state, hysteresis=0.0).select("a", "b")
    assert route.relays == ("c",)


def test_loss_penalty_steers_away_from_lossy_relays():
    state = OverlayState(["a", "b", "c", "d"], alpha=0.5)
    for pair, rtt in {
        ("a", "b"): 200.0,
        ("a", "c"): 40.0,
        ("c", "b"): 40.0,
        ("a", "d"): 45.0,
        ("d", "b"): 45.0,
    }.items():
        for _ in range(6):
            state.record_probe(pair, rtt)
    # Make c's inbound leg lossy: ~50% loss -> +100ms penalty per leg.
    for _ in range(10):
        state.record_probe(("a", "c"), float("nan"))
        state.record_probe(("a", "c"), 40.0)
    assert state.estimate(("a", "c")).loss > 0.3
    route = OverlayRouter(state, loss_penalty_ms=200.0).select("a", "b")
    assert route.relays == ("d",)


def test_two_relay_routes():
    state = _state(
        {
            ("a", "b"): 300.0,
            ("a", "c"): 30.0,
            ("c", "d"): 30.0,
            ("d", "b"): 30.0,
            ("c", "b"): 250.0,
            ("a", "d"): 250.0,
        }
    )
    one = OverlayRouter(state, max_relays=1).select("a", "b")
    two = OverlayRouter(state, max_relays=2).select("a", "b")
    assert one.relays == ("c",) or one.is_direct
    assert two.relays == ("c", "d")
    assert two.estimated_rtt_ms == pytest.approx(90.0)


def test_missing_estimates_fall_back_to_direct():
    state = _state({("a", "b"): 100.0})  # no relay legs measured
    route = OverlayRouter(state).select("a", "b")
    assert route.is_direct


def test_totally_unmeasured_pair_is_direct_with_nan_estimate():
    state = _state({})
    route = OverlayRouter(state).select("a", "b")
    assert route.is_direct
    assert math.isnan(route.estimated_rtt_ms)

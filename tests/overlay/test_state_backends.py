"""Differential test: OverlayState's dict and array backends are
bit-identical.

The array backend exists so Internet-scale overlays don't allocate
n·(n-1) Python objects up front; it must be observationally equivalent
to the historical dict backend, down to the last float bit (the serve
replay gates hash records derived from these estimates).
"""

import math

import pytest

import repro.overlay.state as state_mod
from repro.overlay.state import ARRAY_BACKEND_MIN_HOSTS, OverlayState


def _hosts(n):
    return [f"h{i:03d}" for i in range(n)]


def _backends(monkeypatch, n_hosts):
    """One state per backend over the same membership."""
    hosts = _hosts(n_hosts)
    monkeypatch.setattr(state_mod, "ARRAY_BACKEND_MIN_HOSTS", 10**9)
    dict_state = OverlayState(hosts)
    assert not dict_state._array_backend
    monkeypatch.setattr(state_mod, "ARRAY_BACKEND_MIN_HOSTS", 2)
    array_state = OverlayState(hosts)
    assert array_state._array_backend
    return hosts, dict_state, array_state


def _probe_stream(hosts, n=400):
    """A deterministic mixed stream: successes, losses, heavy tails."""
    stream = []
    for k in range(n):
        a = hosts[k % len(hosts)]
        b = hosts[(k * 7 + 3) % len(hosts)]
        if a == b:
            continue
        if k % 11 == 0:
            rtt = math.nan
        elif k % 17 == 0:
            rtt = 5000.0 + k  # heavy tail, exercises the clip
        else:
            rtt = 20.0 + (k % 37) * 3.25
        stream.append(((a, b), rtt))
    return stream


def test_backends_are_bit_identical(monkeypatch):
    hosts, dict_state, array_state = _backends(monkeypatch, 12)
    for pair, rtt in _probe_stream(hosts):
        dict_state.record_probe(pair, rtt)
        array_state.record_probe(pair, rtt)
    assert dict_state.usable_pairs() == array_state.usable_pairs()
    for a in hosts:
        for b in hosts:
            if a == b:
                continue
            d = dict_state.estimate((a, b))
            v = array_state.estimate((a, b))
            if math.isnan(d.rtt_ms):
                assert math.isnan(v.rtt_ms)
            else:
                assert d.rtt_ms == v.rtt_ms  # exact, not approx
            assert d.loss == v.loss
            assert d.samples == v.samples
            assert d.usable == v.usable


def test_backends_agree_after_reset(monkeypatch):
    hosts, dict_state, array_state = _backends(monkeypatch, 6)
    for pair, rtt in _probe_stream(hosts, n=60):
        dict_state.record_probe(pair, rtt)
        array_state.record_probe(pair, rtt)
    target = (hosts[0], hosts[1])
    dict_state.reset_pair(target)
    array_state.reset_pair(target)
    d = dict_state.estimate(target)
    v = array_state.estimate(target)
    assert math.isnan(d.rtt_ms) and math.isnan(v.rtt_ms)
    assert d.loss == v.loss == 0.0
    assert d.samples == v.samples == 0
    assert dict_state.usable_pairs() == array_state.usable_pairs()


def test_array_backend_keyerrors_match_dict(monkeypatch):
    hosts, dict_state, array_state = _backends(monkeypatch, 4)
    for state in (dict_state, array_state):
        with pytest.raises(KeyError):
            state.estimate(("h000", "nope"))
        with pytest.raises(KeyError):
            state.estimate(("h000", "h000"))
        with pytest.raises(KeyError):
            state.reset_pair(("nope", "h001"))
        with pytest.raises(KeyError):
            state.record_probe(("h000", "h000"), 10.0)


def test_threshold_selects_backend():
    assert not OverlayState(_hosts(ARRAY_BACKEND_MIN_HOSTS - 1))._array_backend
    assert OverlayState(_hosts(ARRAY_BACKEND_MIN_HOSTS))._array_backend

"""Tests for BGP policy routing: preference, export, valley-freeness."""

import pytest

from repro.routing.bgp import BGPError, BGPRoute, BGPTable
from repro.topology.asys import ASLink, ASTier, AutonomousSystem, Relationship
from repro.topology.geography import get_city
from repro.topology.network import Topology


def _line_topology(rels: list[Relationship]) -> Topology:
    """AS chain 1-2-...-n with given relationships (rel of i+1 from i)."""
    topo = Topology()
    city = get_city("chicago")
    n = len(rels) + 1
    for asn in range(1, n + 1):
        topo.add_as(
            AutonomousSystem(asn=asn, name=f"as{asn}", tier=ASTier.TRANSIT, cities=[city])
        )
    for i, rel in enumerate(rels, start=1):
        topo.add_as_link(
            ASLink(a=i, b=i + 1, rel_ab=rel, exchange_cities=("chicago",))
        )
    return topo


def test_direct_customer_route():
    topo = _line_topology([Relationship.CUSTOMER])  # 2 is 1's customer
    table = BGPTable(topo)
    assert table.as_path(1, 2) == (1, 2)
    assert table.as_path(2, 1) == (2, 1)


def test_valley_free_blocks_stub_transit():
    # 1 and 3 are providers of 2: a path 1-2-3 would be a valley.
    topo = _line_topology([Relationship.CUSTOMER, Relationship.PROVIDER])
    table = BGPTable(topo)
    assert table.as_path(1, 2) == (1, 2)
    assert table.as_path(1, 3) is None  # 2 must not transit its providers
    assert table.as_path(3, 1) is None


def test_peer_peer_not_transitive():
    # 1 peers 2, 2 peers 3: peer routes are not exported to peers.
    topo = _line_topology([Relationship.PEER, Relationship.PEER])
    table = BGPTable(topo)
    assert table.as_path(1, 2) == (1, 2)
    assert table.as_path(1, 3) is None


def test_provider_chain_works():
    # 1 buys from 2, 2 buys from 3: customer routes propagate everywhere.
    topo = _line_topology([Relationship.PROVIDER, Relationship.PROVIDER])
    table = BGPTable(topo)
    assert table.as_path(1, 3) == (1, 2, 3)
    assert table.as_path(3, 1) == (3, 2, 1)


def test_customer_route_preferred_over_peer():
    """Diamond: 1 reaches 4 via customer 2 or peer 3; customer wins even
    though both paths have equal length."""
    topo = Topology()
    city = get_city("chicago")
    for asn in (1, 2, 3, 4):
        topo.add_as(
            AutonomousSystem(asn=asn, name=f"as{asn}", tier=ASTier.TRANSIT, cities=[city])
        )
    # 2 is 1's customer; 3 is 1's peer; 4 is customer of both 2 and 3.
    topo.add_as_link(ASLink(a=1, b=2, rel_ab=Relationship.CUSTOMER, exchange_cities=("chicago",)))
    topo.add_as_link(ASLink(a=1, b=3, rel_ab=Relationship.PEER, exchange_cities=("chicago",)))
    topo.add_as_link(ASLink(a=2, b=4, rel_ab=Relationship.CUSTOMER, exchange_cities=("chicago",)))
    topo.add_as_link(ASLink(a=3, b=4, rel_ab=Relationship.CUSTOMER, exchange_cities=("chicago",)))
    table = BGPTable(topo)
    assert table.as_path(1, 4) == (1, 2, 4)


def test_shorter_as_path_wins_within_class():
    """1 reaches 4 via peer 3 directly or via peer 2 then customer...: among
    same-class routes, AS-path length breaks the tie."""
    topo = Topology()
    city = get_city("chicago")
    for asn in (1, 2, 3, 4):
        topo.add_as(
            AutonomousSystem(asn=asn, name=f"as{asn}", tier=ASTier.TRANSIT, cities=[city])
        )
    # Both 2 and 3 are providers of 1 and of 4; additionally 2 reaches 4
    # through an extra intermediate 5.
    topo.add_as(AutonomousSystem(asn=5, name="as5", tier=ASTier.TRANSIT, cities=[city]))
    topo.add_as_link(ASLink(a=1, b=2, rel_ab=Relationship.PROVIDER, exchange_cities=("chicago",)))
    topo.add_as_link(ASLink(a=1, b=3, rel_ab=Relationship.PROVIDER, exchange_cities=("chicago",)))
    topo.add_as_link(ASLink(a=2, b=5, rel_ab=Relationship.CUSTOMER, exchange_cities=("chicago",)))
    topo.add_as_link(ASLink(a=5, b=4, rel_ab=Relationship.CUSTOMER, exchange_cities=("chicago",)))
    topo.add_as_link(ASLink(a=3, b=4, rel_ab=Relationship.CUSTOMER, exchange_cities=("chicago",)))
    table = BGPTable(topo)
    assert table.as_path(1, 4) == (1, 3, 4)


def test_route_preference_key_ordering():
    better = BGPRoute(dest=9, as_path=(1, 9), learned_from=Relationship.CUSTOMER)
    worse = BGPRoute(dest=9, as_path=(1, 9), learned_from=Relationship.PROVIDER)
    assert better.preference_key() < worse.preference_key()
    shorter = BGPRoute(dest=9, as_path=(1, 9), learned_from=Relationship.PEER)
    longer = BGPRoute(dest=9, as_path=(1, 5, 9), learned_from=Relationship.PEER)
    assert shorter.preference_key() < longer.preference_key()


def test_unknown_destination_raises(topo1999):
    table = BGPTable(topo1999)
    with pytest.raises(BGPError):
        table.route(1, 10**9)


def test_full_reachability_generated_topology(topo1999):
    table = BGPTable(topo1999)
    assert table.reachable_fraction() == 1.0


def test_as_paths_are_valley_free(topo1999):
    """No generated route descends (to a customer) and then ascends."""
    table = BGPTable(topo1999)
    asns = sorted(topo1999.ases)[:20]
    for src in asns:
        for dst in asns:
            if src == dst:
                continue
            path = table.as_path(src, dst)
            assert path is not None
            # Classify each hop: +1 up (to provider), 0 peer, -1 down.
            phases = []
            for a, b in zip(path, path[1:]):
                rel = topo1999.relationship(a, b)
                if rel is Relationship.PROVIDER:
                    phases.append(1)
                elif rel is Relationship.PEER:
                    phases.append(0)
                else:
                    phases.append(-1)
            # Valley-free: ups, then at most one peer hop, then downs.
            descended = False
            peered = False
            for p in phases:
                if p == 1:
                    assert not descended and not peered, f"valley in {path}"
                elif p == 0:
                    assert not descended and not peered, f"double peer in {path}"
                    peered = True
                else:
                    descended = True


def test_as_paths_are_consistent_chains(topo1999):
    """Each AS's chosen path must agree with its next hop's chosen path."""
    table = BGPTable(topo1999)
    asns = sorted(topo1999.ases)[:12]
    for src in asns:
        for dst in asns:
            if src == dst:
                continue
            path = table.as_path(src, dst)
            if path and len(path) > 1:
                assert table.as_path(path[1], dst) == path[1:]

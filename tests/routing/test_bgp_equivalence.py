"""Differential tests: staged Gao-Rexford solver vs the fixpoint oracle.

The three-stage solver must be *route-for-route identical* to the
synchronous fixpoint — same reachability, same AS paths, same
learned-from classes, same tie-breaks — on every topology the generator
can produce.  These tests converge every destination on generated
topologies across seeds and eras and compare the full route tables, plus
the structural fallbacks (siblings, customer-provider cycles) and the
batch API's serial/parallel identity.

Note the two tables are keyed separately in the topology's shared routing
cache (by *requested* algorithm), so the comparison is never vacuous.
"""

import os

import pytest
from hypothesis import given, settings, strategies as st

from repro.routing.bgp import (
    BGPError,
    BGPTable,
    ROUTING_JOBS_ENV_VAR,
    resolve_routing_jobs,
)
from repro.topology import TopologyConfig, generate_topology
from repro.topology.asys import ASLink, ASTier, AutonomousSystem, Relationship
from repro.topology.geography import get_city
from repro.topology.network import Topology


def _gadget(n: int, links: list[tuple[int, int, Relationship]]) -> Topology:
    """AS-only topology; rel is of b from a's viewpoint ('b is a's rel')."""
    topo = Topology()
    city = get_city("chicago")
    for asn in range(1, n + 1):
        topo.add_as(
            AutonomousSystem(
                asn=asn, name=f"as{asn}", tier=ASTier.TRANSIT, cities=[city]
            )
        )
    for a, b, rel in links:
        rel_ab = rel if a < b else rel.inverse()
        topo.add_as_link(
            ASLink(a=min(a, b), b=max(a, b), rel_ab=rel_ab, exchange_cities=("chicago",))
        )
    return topo


def _assert_identical_tables(topo: Topology) -> None:
    """Converge everything under both solvers and compare exhaustively."""
    fast = BGPTable(topo)
    oracle = BGPTable(topo, algorithm="fixpoint")
    fast.converge_all()
    oracle.converge_all()
    for dest in sorted(topo.ases):
        for asn in sorted(topo.ases):
            assert fast.route(asn, dest) == oracle.route(asn, dest), (
                f"route divergence at AS{asn} -> AS{dest}"
            )


def _assert_valley_free(topo: Topology, path: tuple[int, ...]) -> None:
    """No path may go down (or across a peer edge) and then up again."""
    descended = False
    peers_crossed = 0
    for a, b in zip(path, path[1:]):
        rel = topo.relationship(a, b)
        assert rel is not None, f"adjacent ASes {a},{b} in {path} not linked"
        if rel is Relationship.PROVIDER:
            assert not descended, f"valley in {path}: uphill after downhill"
            assert peers_crossed == 0, f"valley in {path}: uphill after peer"
        elif rel is Relationship.PEER:
            peers_crossed += 1
            assert peers_crossed <= 1, f"two peer edges in {path}"
            assert not descended, f"peer edge after downhill in {path}"
        elif rel is Relationship.CUSTOMER:
            descended = True
        # SIBLING edges launder routes and are exempt (none generated).


@pytest.mark.parametrize("era", ["1995", "1999"])
@pytest.mark.parametrize("seed", [41, 42, 43])
def test_generated_topologies_route_identical(era, seed):
    topo = generate_topology(TopologyConfig.for_era(era, seed=seed))
    fast = BGPTable(topo)
    assert fast.effective_algorithm() == "gao-rexford"
    _assert_identical_tables(topo)


@pytest.mark.parametrize("era", ["1995", "1999"])
def test_generated_topologies_valley_free(era):
    topo = generate_topology(TopologyConfig.for_era(era, seed=42))
    table = BGPTable(topo)
    table.converge_all()
    checked = 0
    for dest in sorted(topo.ases):
        for asn in sorted(topo.ases):
            path = table.as_path(asn, dest)
            if path is None or len(path) < 2:
                continue
            _assert_valley_free(topo, path)
            checked += 1
    assert checked > 0


def test_gadget_topologies_route_identical():
    gadgets = [
        # Peer-peer-peer inexpressibility.
        _gadget(4, [
            (2, 1, Relationship.CUSTOMER),
            (2, 3, Relationship.CUSTOMER),
            (1, 4, Relationship.PEER),
            (4, 3, Relationship.PEER),
        ]),
        # Customer route preferred although longer.
        _gadget(5, [
            (1, 2, Relationship.CUSTOMER),
            (2, 4, Relationship.CUSTOMER),
            (4, 5, Relationship.CUSTOMER),
            (1, 3, Relationship.PEER),
            (3, 5, Relationship.CUSTOMER),
        ]),
        # Next-hop ASN tie-break.
        _gadget(4, [
            (1, 2, Relationship.PROVIDER),
            (1, 3, Relationship.PROVIDER),
            (2, 4, Relationship.CUSTOMER),
            (3, 4, Relationship.CUSTOMER),
        ]),
        # Disconnected AS.
        _gadget(3, [(1, 2, Relationship.PEER)]),
        # Diamond with a peer shortcut at the top.
        _gadget(6, [
            (1, 3, Relationship.PROVIDER),
            (2, 4, Relationship.PROVIDER),
            (3, 5, Relationship.PROVIDER),
            (4, 6, Relationship.PROVIDER),
            (5, 6, Relationship.PEER),
            (3, 4, Relationship.PEER),
        ]),
    ]
    for topo in gadgets:
        assert BGPTable(topo).effective_algorithm() == "gao-rexford"
        _assert_identical_tables(topo)


@given(seed=st.integers(min_value=0, max_value=500))
@settings(max_examples=25, deadline=None)
def test_random_hierarchies_route_identical(seed):
    import random

    rng = random.Random(seed)
    n = rng.randint(4, 12)
    links = []
    for asn in range(2, n + 1):
        provider = rng.randint(1, asn - 1)
        links.append((provider, asn, Relationship.CUSTOMER))
    for _ in range(rng.randint(0, n // 2)):
        a, b = rng.sample(range(1, n + 1), 2)
        if not any({a, b} == {x, y} for x, y, _ in links):
            links.append((a, b, Relationship.PEER))
    _assert_identical_tables(_gadget(n, links))


def test_sibling_topology_falls_back_to_fixpoint():
    topo = _gadget(3, [
        (1, 2, Relationship.SIBLING),
        (2, 3, Relationship.PEER),
    ])
    table = BGPTable(topo)
    assert table.effective_algorithm() == "fixpoint"
    # Sibling laundering still works through the fallback.
    assert table.as_path(1, 3) == (1, 2, 3)
    assert table.as_path(3, 1) == (3, 2, 1)
    _assert_identical_tables(topo)


def test_customer_provider_cycle_falls_back_to_fixpoint():
    topo = _gadget(3, [
        (1, 2, Relationship.PROVIDER),   # 2 is 1's provider
        (2, 3, Relationship.PROVIDER),   # 3 is 2's provider
        (3, 1, Relationship.PROVIDER),   # 1 is 3's provider: a cycle
    ])
    assert topo.relationship_index().up_order is None
    table = BGPTable(topo)
    assert table.effective_algorithm() == "fixpoint"
    _assert_identical_tables(topo)


def test_unknown_algorithm_rejected():
    with pytest.raises(ValueError, match="unknown BGP algorithm"):
        BGPTable(Topology(), algorithm="ospf")


def test_converge_all_unknown_destination():
    topo = _gadget(2, [(1, 2, Relationship.PEER)])
    with pytest.raises(BGPError, match="unknown destination"):
        BGPTable(topo).converge_all([99])


def test_converge_all_serial_parallel_and_lazy_identical():
    cfg = TopologyConfig.for_era("1995", seed=44)
    # Distinct topology instances so the shared per-topology route cache
    # cannot make the comparison vacuous (the generator is deterministic).
    topo_serial = generate_topology(cfg)
    topo_parallel = generate_topology(cfg)
    topo_lazy = generate_topology(cfg)
    serial = BGPTable(topo_serial)
    parallel = BGPTable(topo_parallel)
    lazy = BGPTable(topo_lazy)
    serial.converge_all(jobs=1)
    parallel.converge_all(jobs=2)
    for dest in sorted(topo_serial.ases):
        for asn in sorted(topo_serial.ases):
            s = serial.route(asn, dest)
            assert s == parallel.route(asn, dest), f"AS{asn}->AS{dest}"
            assert s == lazy.route(asn, dest), f"AS{asn}->AS{dest}"


def test_converge_all_subset_and_idempotence():
    topo = generate_topology(TopologyConfig.for_era("1995", seed=45))
    table = BGPTable(topo)
    dests = sorted(topo.ases)[:5]
    table.converge_all(dests)
    table.converge_all(dests)  # second call is a no-op, not an error
    for d in dests:
        assert table.route(d, d) is not None


def test_resolve_routing_jobs(monkeypatch):
    monkeypatch.delenv(ROUTING_JOBS_ENV_VAR, raising=False)
    assert resolve_routing_jobs(None, 10) == 1       # default: serial
    assert resolve_routing_jobs(4, 10) == 4
    assert resolve_routing_jobs(16, 10) == 10        # clamped to tasks
    assert resolve_routing_jobs(0, 10) == 1          # floor of 1
    assert resolve_routing_jobs(8, 0) == 1           # nothing to do
    monkeypatch.setenv(ROUTING_JOBS_ENV_VAR, "3")
    assert resolve_routing_jobs(None, 10) == 3
    assert resolve_routing_jobs(2, 10) == 2          # explicit arg wins
    monkeypatch.setenv(ROUTING_JOBS_ENV_VAR, "lots")
    with pytest.raises(ValueError, match=ROUTING_JOBS_ENV_VAR):
        resolve_routing_jobs(None, 10)


def test_shared_route_cache_reused_and_invalidated():
    topo = _gadget(3, [
        (1, 2, Relationship.CUSTOMER),
        (2, 3, Relationship.CUSTOMER),
    ])
    first = BGPTable(topo)
    assert first.as_path(3, 1) == (3, 2, 1)
    # A second table over the same topology sees the converged store.
    second = BGPTable(topo)
    assert second._routes is first._routes
    # Mutating the AS graph invalidates the shared store: a new table
    # starts fresh and sees the new link.
    city = get_city("chicago")
    topo.add_as(AutonomousSystem(asn=4, name="as4", tier=ASTier.TRANSIT, cities=[city]))
    topo.add_as_link(ASLink(a=1, b=4, rel_ab=Relationship.CUSTOMER, exchange_cities=("chicago",)))
    third = BGPTable(topo)
    assert third._routes is not first._routes
    assert third.as_path(4, 1) is not None

"""Tests for host-to-host path resolution."""

import itertools

import pytest

from repro.routing import (
    EgressPolicy,
    ForwardingError,
    OptimalResolver,
    PathResolver,
)


@pytest.fixture(scope="module")
def pairs(topo1999):
    names = topo1999.host_names()[:8]
    return list(itertools.permutations(names, 2))


def test_resolve_self_rejected(resolver, topo1999):
    name = topo1999.host_names()[0]
    with pytest.raises(ForwardingError):
        resolver.resolve(name, name)


def test_path_endpoints_and_continuity(resolver, topo1999, pairs):
    for src, dst in pairs[:20]:
        path = resolver.resolve(src, dst)
        assert path.routers[0] == topo1999.host(src).access_router
        assert path.routers[-1] == topo1999.host(dst).access_router
        assert len(path.links) == len(path.routers) - 1
        for (a, b), link_id in zip(zip(path.routers, path.routers[1:]), path.links):
            link = topo1999.links[link_id]
            assert {a, b} == {link.u, link.v}, "link does not join its routers"


def test_as_path_matches_router_ownership(resolver, topo1999, pairs):
    for src, dst in pairs[:20]:
        path = resolver.resolve(src, dst)
        seen = []
        for rid in path.routers:
            asn = topo1999.routers[rid].asn
            if not seen or seen[-1] != asn:
                seen.append(asn)
        assert tuple(seen) == path.as_path


def test_no_router_revisited(resolver, pairs):
    for src, dst in pairs[:20]:
        path = resolver.resolve(src, dst)
        assert len(set(path.routers)) == len(path.routers)


def test_prop_delay_is_sum_of_links(resolver, topo1999, pairs):
    src, dst = pairs[0]
    path = resolver.resolve(src, dst)
    total = sum(topo1999.links[l].prop_delay_ms for l in path.links)
    assert path.prop_delay_ms == pytest.approx(total)


def test_resolution_is_cached(resolver, pairs):
    src, dst = pairs[0]
    assert resolver.resolve(src, dst) is resolver.resolve(src, dst)


def test_round_trip_combines_directions(resolver, pairs):
    src, dst = pairs[0]
    rt = resolver.resolve_round_trip(src, dst)
    assert rt.forward.src == src and rt.forward.dst == dst
    assert rt.reverse.src == dst and rt.reverse.dst == src
    assert rt.rtt_prop_ms == pytest.approx(
        rt.forward.prop_delay_ms + rt.reverse.prop_delay_ms
    )
    assert rt.link_ids == rt.forward.links + rt.reverse.links


def test_some_routing_asymmetry_exists(resolver, pairs):
    """Early-exit egress selection should produce asymmetric routes for a
    meaningful share of pairs (Paxson's observation, modeled here)."""
    asym = sum(
        1 for src, dst in pairs if not resolver.resolve_round_trip(src, dst).is_symmetric
    )
    assert asym > 0


def test_optimal_never_worse_than_policy(topo1999, resolver, pairs):
    optimal = OptimalResolver(topo1999)
    for src, dst in pairs[:25]:
        policy = resolver.resolve(src, dst).prop_delay_ms
        best = optimal.resolve(src, dst).prop_delay_ms
        assert best <= policy + 1e-9


def test_policy_routing_is_sometimes_inefficient(topo1999, resolver, pairs):
    """The paper's premise: policy paths are often longer than optimal."""
    optimal = OptimalResolver(topo1999)
    inflated = sum(
        1
        for src, dst in pairs
        if resolver.resolve(src, dst).prop_delay_ms
        > optimal.resolve(src, dst).prop_delay_ms * 1.1
    )
    assert inflated > len(pairs) * 0.2


def test_best_exit_no_worse_on_average(topo1999, pairs):
    """Destination-aware egress should (on average) shorten paths."""
    early = PathResolver(topo1999)
    best = PathResolver(
        topo1999,
        egress_policy=EgressPolicy.BEST_EXIT,
        respect_as_early_exit=False,
    )
    d_early = sum(early.resolve(s, d).prop_delay_ms for s, d in pairs)
    d_best = sum(best.resolve(s, d).prop_delay_ms for s, d in pairs)
    assert d_best <= d_early * 1.02


def test_optimal_resolver_rejects_self(topo1999):
    optimal = OptimalResolver(topo1999)
    name = topo1999.host_names()[0]
    with pytest.raises(ForwardingError):
        optimal.resolve(name, name)


def test_optimal_round_trip_symmetric_cost(topo1999, pairs):
    optimal = OptimalResolver(topo1999)
    src, dst = pairs[0]
    rt = optimal.resolve_round_trip(src, dst)
    assert rt.forward.prop_delay_ms == pytest.approx(rt.reverse.prop_delay_ms)


def test_egress_memo_consistent_with_direct_ranking(topo1999, pairs):
    """A warm egress cache must hand out the same exchange links a cold
    ranking would: resolving the same pairs through a fresh resolver with
    an emptied cache yields identical router-level paths."""
    warm = PathResolver(topo1999)
    warm_paths = [warm.resolve(s, d) for s, d in pairs[:20]]
    assert warm._egress_cache  # multi-exchange hops were memoized
    cold = PathResolver(topo1999)
    cold._cache.clear()
    cold._egress_cache.clear()
    for (s, d), expected in zip(pairs[:20], warm_paths):
        assert cold.resolve(s, d) == expected


def test_secondary_demotes_via_same_ranking(topo1999, pairs):
    """The demoted (secondary) egress comes from the same memoized
    ranking: where the primary and secondary differ, they differ in the
    first AS hop with >= 2 exchange options."""
    resolver = PathResolver(topo1999)
    diverged = 0
    for s, d in pairs[:30]:
        primary = resolver.resolve(s, d)
        secondary = resolver.resolve_secondary(s, d)
        assert secondary.as_path == primary.as_path
        if secondary.links != primary.links:
            diverged += 1
    assert diverged > 0

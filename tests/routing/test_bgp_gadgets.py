"""Classic BGP policy gadgets and structural properties.

These are the textbook configurations from the interdomain-routing
literature (Gao–Rexford safety conditions, shortest-path violations,
multihoming) exercised against our decision/export implementation.
"""

from hypothesis import given, settings, strategies as st

from repro.routing.bgp import BGPTable
from repro.topology.asys import ASLink, ASTier, AutonomousSystem, Relationship
from repro.topology.geography import get_city
from repro.topology.network import Topology


def _topo(n: int, links: list[tuple[int, int, Relationship]]) -> Topology:
    """Build an AS-only topology; rel is of b from a ('b is a's rel')."""
    topo = Topology()
    city = get_city("chicago")
    for asn in range(1, n + 1):
        topo.add_as(
            AutonomousSystem(
                asn=asn, name=f"as{asn}", tier=ASTier.TRANSIT, cities=[city]
            )
        )
    for a, b, rel in links:
        rel_ab = rel if a < b else rel.inverse()
        topo.add_as_link(
            ASLink(a=min(a, b), b=max(a, b), rel_ab=rel_ab, exchange_cities=("chicago",))
        )
    return topo


def test_policy_beats_shortest_path():
    """The canonical inefficiency: 1 reaches 3 via its provider chain
    (1-2-4-3) even though a direct peer link 1-3 ... wait, here: a
    2-hop customer route is preferred over a 1-hop provider route only
    by local-pref class; with classes equal, length wins.  Construct the
    case where the policy path is LONGER than the forbidden short path:
    1 and 3 are both customers of 2; 1 peers with 4, 4 peers with 3 is
    invalid (peer-peer not transitive), so 1 must use 1-2-3 even if a
    physically shorter peer chain exists."""
    topo = _topo(
        4,
        [
            (2, 1, Relationship.CUSTOMER),   # 1 is 2's customer
            (2, 3, Relationship.CUSTOMER),   # 3 is 2's customer
            (1, 4, Relationship.PEER),
            (4, 3, Relationship.PEER),
        ],
    )
    table = BGPTable(topo)
    # The peer-peer-peer path (1,4,3) is inexpressible.
    assert table.as_path(1, 3) == (1, 2, 3)


def test_multihomed_customer_prefers_customer_route():
    """5 is a customer of both 2 and 3; 1 reaches 5 through whichever
    neighbor it has a customer route to, regardless of length."""
    topo = _topo(
        5,
        [
            (1, 2, Relationship.CUSTOMER),   # 2 is 1's customer
            (1, 3, Relationship.PEER),
            (2, 5, Relationship.CUSTOMER),
            (3, 5, Relationship.CUSTOMER),
        ],
    )
    table = BGPTable(topo)
    # Both (1,2,5) and (1,3,5) have length 3, but 2 is a customer.
    assert table.as_path(1, 5) == (1, 2, 5)


def test_prefer_customer_even_when_longer():
    """Customer routes win even at a longer AS-path length."""
    topo = _topo(
        5,
        [
            (1, 2, Relationship.CUSTOMER),   # 2 is 1's customer
            (2, 4, Relationship.CUSTOMER),   # 4 is 2's customer
            (4, 5, Relationship.CUSTOMER),
            (1, 3, Relationship.PEER),
            (3, 5, Relationship.CUSTOMER),
        ],
    )
    table = BGPTable(topo)
    # Customer route (1,2,4,5) vs shorter peer route (1,3,5).
    assert table.as_path(1, 5) == (1, 2, 4, 5)


def test_tiebreak_by_next_hop_asn():
    """Equal class, equal length: deterministic lowest-next-hop tie-break."""
    topo = _topo(
        4,
        [
            (1, 2, Relationship.PROVIDER),   # 2 is 1's provider
            (1, 3, Relationship.PROVIDER),
            (2, 4, Relationship.CUSTOMER),
            (3, 4, Relationship.CUSTOMER),
        ],
    )
    table = BGPTable(topo)
    assert table.as_path(1, 4) == (1, 2, 4)


def test_sibling_routes_exchange_everything():
    """Siblings act as one organization: peer-learned routes DO cross a
    sibling boundary."""
    topo = _topo(
        3,
        [
            (1, 2, Relationship.SIBLING),
            (2, 3, Relationship.PEER),
        ],
    )
    table = BGPTable(topo)
    assert table.as_path(1, 3) == (1, 2, 3)
    # And the peer's routes reach the sibling.
    assert table.as_path(3, 1) == (3, 2, 1)


def test_isolated_as_unreachable():
    topo = _topo(3, [(1, 2, Relationship.PEER)])
    table = BGPTable(topo)
    assert table.as_path(1, 3) is None
    assert table.as_path(3, 1) is None
    assert table.as_path(1, 2) == (1, 2)


@given(seed=st.integers(min_value=0, max_value=200))
@settings(max_examples=20, deadline=None)
def test_random_hierarchies_converge_loop_free(seed):
    """Random strict provider hierarchies always converge to loop-free,
    consistent routes (Gao-Rexford safety)."""
    import random

    rng = random.Random(seed)
    n = rng.randint(4, 10)
    links = []
    # Strict hierarchy: each AS > 1 buys transit from a lower-numbered AS.
    for asn in range(2, n + 1):
        provider = rng.randint(1, asn - 1)
        links.append((provider, asn, Relationship.CUSTOMER))
    # Sprinkle peer links between same-"level" ASes.
    for _ in range(rng.randint(0, n // 2)):
        a, b = rng.sample(range(1, n + 1), 2)
        if not any({a, b} == {x, y} for x, y, _ in links):
            links.append((a, b, Relationship.PEER))
    topo = _topo(n, links)
    table = BGPTable(topo)
    for src in range(1, n + 1):
        for dst in range(1, n + 1):
            if src == dst:
                continue
            path = table.as_path(src, dst)
            assert path is not None, f"{src}->{dst} unreachable in hierarchy"
            assert len(set(path)) == len(path), f"loop in {path}"
            assert path[0] == src and path[-1] == dst
            # Consistency with the next hop's choice.
            if len(path) > 1:
                assert table.as_path(path[1], dst) == path[1:]

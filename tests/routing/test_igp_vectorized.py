"""Vectorized (scipy all-pairs) vs lazy (per-source heap) IGP backends.

The two backends must agree on every cost and on reachability; where
equal-cost shortest paths exist the chosen path may differ between
backends, so path assertions check validity and optimality rather than
hop-for-hop identity.
"""

import math

import pytest

from repro.routing.forwarding import PathResolver
from repro.routing.igp import IGPError, IGPTable, VECTOR_MIN_ROUTERS, link_metric
from repro.topology import TopologyConfig, generate_topology, place_hosts


@pytest.fixture(scope="module")
def topo():
    return generate_topology(TopologyConfig.for_era("1999", seed=42))


def _checkable_ases(topo, limit=6):
    """The largest ASes (the ones that exercise the vectorized backend)."""
    sized = sorted(
        topo.ases, key=lambda a: (-len(topo.routers_of(a)), a)
    )
    return sized[:limit]


def test_backends_agree_on_all_costs(topo):
    for asn in _checkable_ases(topo):
        routers = topo.routers_of(asn)
        lazy = IGPTable(topo, asn, vectorized=False)
        vec = IGPTable(topo, asn, vectorized=True)
        assert not lazy.vectorized
        assert vec.vectorized
        for s in routers:
            for d in routers:
                cl, cv = lazy.cost(s, d), vec.cost(s, d)
                if math.isinf(cl):
                    assert math.isinf(cv), (asn, s, d)
                else:
                    assert cl == pytest.approx(cv), (asn, s, d)


def test_vectorized_paths_are_valid_shortest_paths(topo):
    for asn in _checkable_ases(topo, limit=3):
        routers = topo.routers_of(asn)
        vec = IGPTable(topo, asn, vectorized=True)
        lazy = IGPTable(topo, asn, vectorized=False)
        for s in routers[:8]:
            for d in routers:
                if math.isinf(vec.cost(s, d)):
                    continue
                path = vec.path(s, d)
                assert path.routers[0] == s and path.routers[-1] == d
                assert len(path.links) == len(path.routers) - 1
                total = 0.0
                for (u, v), lid in zip(
                    zip(path.routers, path.routers[1:]), path.links
                ):
                    link = topo.links[lid]
                    assert {link.u, link.v} == {u, v}, (asn, s, d, lid)
                    total += link_metric(link, vec.style)
                # Valid AND optimal: cost equals the lazy backend's.
                assert total == pytest.approx(path.cost)
                assert path.cost == pytest.approx(lazy.cost(s, d))


def test_auto_threshold_selects_backend(topo):
    for asn in sorted(topo.ases):
        table = IGPTable(topo, asn)
        expect = len(topo.routers_of(asn)) >= VECTOR_MIN_ROUTERS
        assert table.vectorized == expect, asn


def test_vectorized_error_semantics_match(topo):
    asn = _checkable_ases(topo, limit=1)[0]
    other = next(a for a in sorted(topo.ases) if a != asn)
    foreign = topo.routers_of(other)[0]
    inside = topo.routers_of(asn)[0]
    for vectorized in (False, True):
        table = IGPTable(topo, asn, vectorized=vectorized)
        with pytest.raises(IGPError, match=f"not in AS{asn}"):
            table.cost(foreign, inside)
        with pytest.raises(IGPError, match=f"not in AS{asn}"):
            table.path(foreign, inside)
        with pytest.raises(IGPError, match="unreachable"):
            table.path(inside, foreign)
        # Trivial self-path.
        self_path = table.path(inside, inside)
        assert self_path.routers == (inside,)
        assert self_path.links == ()
        assert self_path.cost == 0.0


def test_igp_path_memo_returns_same_object(topo):
    asn = _checkable_ases(topo, limit=1)[0]
    routers = topo.routers_of(asn)
    table = IGPTable(topo, asn)
    first = table.path(routers[0], routers[-1])
    assert table.path(routers[0], routers[-1]) is first


def test_resolvers_share_igp_tables_and_bgp_routes(topo):
    place = generate_topology(TopologyConfig.for_era("1995", seed=46))
    place_hosts(place, 6, seed=7)
    r1 = PathResolver(place)
    names = place.host_names()
    p1 = r1.resolve(names[0], names[1])
    # A second resolver over the same topology reuses the shared routing
    # state and produces identical paths.
    r2 = PathResolver(place)
    assert r2._igp.table(place.host(names[0]).asn) is r1._igp.table(
        place.host(names[0]).asn
    )
    assert r2._bgp._routes is r1._bgp._routes
    assert r2.resolve(names[0], names[1]) == p1

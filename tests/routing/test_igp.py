"""Tests for intra-AS routing."""

import pytest

from repro.routing.igp import IGPError, IGPSuite, IGPTable, link_metric
from repro.topology.asys import IGPStyle


def test_link_metric_styles(topo1999):
    link = topo1999.links[0]
    assert link_metric(link, IGPStyle.HOP_COUNT) == 1.0
    assert link_metric(link, IGPStyle.DELAY_METRIC) == link.prop_delay_ms


@pytest.fixture(scope="module")
def any_big_as(topo1999):
    # Pick the AS with the most routers for interesting paths.
    return max(topo1999.ases, key=lambda a: len(topo1999.routers_of(a)))


def test_intra_as_connectivity(topo1999, any_big_as):
    table = IGPTable(topo1999, any_big_as)
    routers = topo1999.routers_of(any_big_as)
    src = routers[0]
    for dst in routers:
        assert table.reachable(src, dst), f"{dst} unreachable inside AS{any_big_as}"


def test_path_endpoints_and_links(topo1999, any_big_as):
    table = IGPTable(topo1999, any_big_as)
    routers = topo1999.routers_of(any_big_as)
    src, dst = routers[0], routers[-1]
    path = table.path(src, dst)
    assert path.routers[0] == src
    assert path.routers[-1] == dst
    assert len(path.links) == len(path.routers) - 1
    # Every link actually joins its adjacent routers.
    for (a, b), link_id in zip(zip(path.routers, path.routers[1:]), path.links):
        link = topo1999.links[link_id]
        assert {a, b} == {link.u, link.v}


def test_path_cost_matches_metric(topo1999, any_big_as):
    table = IGPTable(topo1999, any_big_as)
    routers = topo1999.routers_of(any_big_as)
    path = table.path(routers[0], routers[-1])
    total = sum(
        link_metric(topo1999.links[l], table.style) for l in path.links
    )
    assert path.cost == pytest.approx(total)


def test_trivial_path(topo1999, any_big_as):
    table = IGPTable(topo1999, any_big_as)
    src = topo1999.routers_of(any_big_as)[0]
    path = table.path(src, src)
    assert path.routers == (src,)
    assert path.links == ()
    assert path.cost == 0.0


def test_cost_triangle_inequality(topo1999, any_big_as):
    table = IGPTable(topo1999, any_big_as)
    routers = topo1999.routers_of(any_big_as)[:6]
    for a in routers:
        for b in routers:
            for c in routers:
                assert table.cost(a, c) <= table.cost(a, b) + table.cost(b, c) + 1e-9


def test_foreign_router_rejected(topo1999):
    asns = sorted(topo1999.ases)
    table = IGPTable(topo1999, asns[0])
    foreign = topo1999.routers_of(asns[1])[0]
    with pytest.raises(IGPError):
        table.cost(foreign, foreign)


def test_unreachable_raises(topo1999, any_big_as):
    table = IGPTable(topo1999, any_big_as)
    src = topo1999.routers_of(any_big_as)[0]
    with pytest.raises(IGPError):
        # Router id from another AS is unreachable within this table.
        other_as = next(a for a in topo1999.ases if a != any_big_as)
        table.path(src, topo1999.routers_of(other_as)[0])


def test_suite_caches_tables(topo1999, any_big_as):
    suite = IGPSuite(topo1999)
    assert suite.table(any_big_as) is suite.table(any_big_as)
    with pytest.raises(IGPError):
        suite.table(999999)

"""Tests for route dynamics: secondary paths, flaps, dynamic sampling."""

import itertools

import numpy as np
import pytest

from repro.netsim import PathSampler
from repro.netsim.dynamics import DynamicPathSampler
from repro.routing.dynamics import FLAP_WINDOW_S, RouteFlapModel


@pytest.fixture(scope="module")
def pairs(topo1999):
    names = topo1999.host_names()[:8]
    return list(itertools.permutations(names, 2))


@pytest.fixture(scope="module")
def primaries(resolver, pairs):
    return [resolver.resolve_round_trip(a, b) for a, b in pairs]


@pytest.fixture(scope="module")
def secondaries(resolver, pairs):
    return [resolver.resolve_round_trip_secondary(a, b) for a, b in pairs]


# -- secondary path resolution ------------------------------------------------

def test_secondary_is_valid_path(resolver, topo1999, pairs, secondaries):
    for (src, dst), rt in zip(pairs, secondaries):
        path = rt.forward
        assert path.routers[0] == topo1999.host(src).access_router
        assert path.routers[-1] == topo1999.host(dst).access_router
        for (a, b), link_id in zip(
            zip(path.routers, path.routers[1:]), path.links
        ):
            link = topo1999.links[link_id]
            assert {a, b} == {link.u, link.v}


def test_secondary_differs_when_options_exist(pairs, primaries, secondaries):
    differing = sum(
        1
        for p, s in zip(primaries, secondaries)
        if p.forward.links != s.forward.links
    )
    assert differing > 0, "some pairs must have an alternative exchange"


def test_secondary_same_as_path_sequence(primaries, secondaries):
    """A flap changes the exchange point, not the AS-level route."""
    for p, s in zip(primaries, secondaries):
        assert p.forward.as_path == s.forward.as_path


def test_secondary_never_shorter_than_primary_policy_choice(
    primaries, secondaries
):
    """Early-exit picks the IGP-closest egress, so demoting it cannot
    shorten the path inside the first AS (propagation may still differ
    beyond it, but on average the secondary is no better)."""
    mean_primary = np.mean([p.rtt_prop_ms for p in primaries])
    mean_secondary = np.mean([s.rtt_prop_ms for s in secondaries])
    assert mean_secondary >= mean_primary - 1.0


def test_secondary_resolution_cached(resolver, pairs):
    src, dst = pairs[0]
    assert resolver.resolve_secondary(src, dst) is resolver.resolve_secondary(src, dst)


def test_secondary_self_rejected(resolver, topo1999):
    from repro.routing import ForwardingError

    name = topo1999.host_names()[0]
    with pytest.raises(ForwardingError):
        resolver.resolve_secondary(name, name)


# -- the flap model -------------------------------------------------------------

def test_flap_model_validation():
    with pytest.raises(ValueError):
        RouteFlapModel(flappy_fraction=1.5)
    with pytest.raises(ValueError):
        RouteFlapModel(flap_probability=-0.1)


def test_flap_model_deterministic():
    a = RouteFlapModel(seed=7)
    b = RouteFlapModel(seed=7)
    for i in range(20):
        for w in range(5):
            t = w * FLAP_WINDOW_S
            assert a.on_secondary(i, t) == b.on_secondary(i, t)


def test_flappy_fraction_respected():
    model = RouteFlapModel(flappy_fraction=0.3, seed=11)
    flappy = sum(model.is_flappy(i) for i in range(500)) / 500
    assert 0.2 < flappy < 0.4


def test_stable_pairs_never_flap():
    model = RouteFlapModel(flappy_fraction=0.5, flap_probability=0.5, seed=13)
    stable = [i for i in range(100) if not model.is_flappy(i)]
    assert stable
    for i in stable[:10]:
        for w in range(30):
            assert not model.on_secondary(i, w * FLAP_WINDOW_S)


def test_prevalence_matches_paxson_shape():
    """Paths are 'generally dominated by a single route': the mean route
    prevalence must be high even though some pairs fluctuate."""
    model = RouteFlapModel(flappy_fraction=0.25, flap_probability=0.1, seed=17)
    horizon = 14 * 86400.0
    prevalences = [model.prevalence(i, horizon) for i in range(200)]
    assert np.mean(prevalences) > 0.95
    fluctuating = [p for p in prevalences if p < 1.0]
    assert fluctuating, "some pairs must fluctuate"
    assert all(p > 0.6 for p in prevalences)


def test_zero_rates_mean_no_flaps():
    model = RouteFlapModel(flappy_fraction=0.0, seed=1)
    assert all(model.prevalence(i, 7 * 86400.0) == 1.0 for i in range(20))


# -- dynamic sampling -------------------------------------------------------------

def test_dynamic_sampler_alignment(conditions, primaries, secondaries):
    with pytest.raises(ValueError):
        DynamicPathSampler(conditions, primaries, secondaries[:-1], RouteFlapModel())


def test_dynamic_sampler_matches_static_when_stable(
    conditions, primaries, secondaries
):
    """With no flaps, the dynamic view equals the primary sampler's."""
    model = RouteFlapModel(flappy_fraction=0.0, seed=1)
    dyn = DynamicPathSampler(conditions, primaries, secondaries, model)
    static = PathSampler(conditions, primaries)
    t = 86400.0
    dv, sv = dyn.view(t), static.view(t)
    np.testing.assert_allclose(dv.qsum, sv.qsum)
    np.testing.assert_allclose(dv.ploss, sv.ploss)
    np.testing.assert_allclose(dv.prop, sv.prop)


def test_dynamic_sampler_switches_routes(conditions, primaries, secondaries):
    model = RouteFlapModel(flappy_fraction=1.0, flap_probability=1.0, seed=2)
    dyn = DynamicPathSampler(conditions, primaries, secondaries, model)
    sec = PathSampler(conditions, secondaries)
    t = 86400.0
    np.testing.assert_allclose(dyn.view(t).prop, sec.view(t).prop)


def test_dynamic_probe_batch(conditions, primaries, secondaries, rng):
    model = RouteFlapModel(seed=3)
    dyn = DynamicPathSampler(conditions, primaries, secondaries, model)
    batch = dyn.probe(86400.0, rng)
    assert batch.rtt_ms.shape == (len(dyn),)
    assert np.all(np.isnan(batch.rtt_ms) == batch.lost)


def test_campaign_with_flaps(topo1999, conditions, resolver):
    """The collector accepts a flap model and still produces a coherent
    dataset; flapped pairs see higher RTT variance."""
    from repro.measurement import Campaign, poisson_pairs
    from repro.netsim import SECONDS_PER_DAY

    hosts = topo1999.host_names()[:6]
    model = RouteFlapModel(flappy_fraction=0.5, flap_probability=0.3, seed=5)
    campaign = Campaign(
        topo1999, conditions, hosts, resolver=resolver, seed=71,
        control_failure_prob=0.0, flap_model=model,
    )
    requests = poisson_pairs(hosts, SECONDS_PER_DAY, 120.0, seed=71)
    records, stats = campaign.run_traceroutes(requests)
    assert stats.completed == len(records)
    assert records

"""Tests for the ping simulator."""

import math

import numpy as np
import pytest

from repro.measurement.ping import PingResult, PingTool


@pytest.fixture(scope="module")
def round_trip(topo1999, resolver):
    names = topo1999.host_names()
    return resolver.resolve_round_trip(names[0], names[2])


@pytest.fixture(scope="module")
def tool(conditions):
    return PingTool(conditions)


def test_ping_counts(tool, round_trip, rng):
    result = tool.ping(round_trip, t=86400.0, rng=rng, count=20)
    assert result.sent == 20
    assert 0 <= result.received <= 20
    assert len(result.rtts_ms) == result.received
    assert 0.0 <= result.loss_rate <= 1.0


def test_ping_statistics_order(tool, round_trip, rng):
    result = tool.ping(round_trip, t=86400.0, rng=rng, count=30)
    if result.rtts_ms:
        assert result.min_ms <= result.avg_ms <= result.max_ms
        assert result.mdev_ms >= 0.0
        assert result.min_ms >= round_trip.rtt_prop_ms


def test_ping_validation(tool, round_trip, rng):
    with pytest.raises(ValueError):
        tool.ping(round_trip, t=0.0, rng=rng, count=0)
    with pytest.raises(ValueError):
        tool.ping(round_trip, t=0.0, rng=rng, interval_s=0.0)


def test_ping_render(tool, round_trip, rng):
    result = tool.ping(round_trip, t=86400.0, rng=rng, count=5)
    text = result.render()
    assert "ping statistics" in text
    assert "packets transmitted" in text


def test_all_lost_result():
    result = PingResult(src="a", dst="b", sent=5, received=0, rtts_ms=())
    assert result.loss_rate == 1.0
    assert math.isnan(result.avg_ms)
    assert "100% packet loss" in result.render()


def test_mdev_is_rms_deviation():
    """iputils ping's mdev is sqrt(mean(x^2) - mean(x)^2) — the RMS
    deviation, not the mean absolute deviation."""
    result = PingResult(
        src="a", dst="b", sent=4, received=4,
        rtts_ms=(100.0, 100.0, 140.0, 140.0),
    )
    assert result.mdev_ms == pytest.approx(20.0)
    skewed = PingResult(
        src="a", dst="b", sent=3, received=3, rtts_ms=(10.0, 10.0, 40.0)
    )
    # mean 20, mean square 600: sqrt(600 - 400) = sqrt(200).
    assert skewed.mdev_ms == pytest.approx(math.sqrt(200.0))
    # The old mean absolute deviation would be (10 + 10 + 20) / 3 ≈ 13.3.
    assert skewed.mdev_ms > 40.0 / 3.0


def test_mdev_constant_sample_is_zero():
    result = PingResult(
        src="a", dst="b", sent=3, received=3, rtts_ms=(50.0, 50.0, 50.0)
    )
    assert result.mdev_ms == pytest.approx(0.0)


def test_repeated_pings_reuse_cached_sampler(tool, round_trip, rng):
    tool.ping(round_trip, t=86400.0, rng=rng, count=2)
    first = tool._samplers[round_trip]
    tool.ping(round_trip, t=90000.0, rng=rng, count=2)
    assert tool._samplers[round_trip] is first


def test_ping_deterministic(tool, round_trip):
    r1 = tool.ping(round_trip, t=86400.0, rng=np.random.default_rng(5), count=10)
    r2 = tool.ping(round_trip, t=86400.0, rng=np.random.default_rng(5), count=10)
    assert r1 == r2

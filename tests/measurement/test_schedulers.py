"""Tests for measurement request scheduling."""

import numpy as np
import pytest
from hypothesis import given, settings, strategies as st

from repro.measurement.schedulers import (
    SchedulerError,
    poisson_episodes,
    poisson_pairs,
    round_robin_pairs,
    uniform_per_server,
)

HOSTS = [f"h{i}" for i in range(8)]
DAY = 86400.0


def test_uniform_basic_properties():
    reqs = list(uniform_per_server(HOSTS, DAY, 600.0, seed=1))
    assert reqs
    times = [r.t for r in reqs]
    assert times == sorted(times)
    assert all(0 <= r.t < DAY for r in reqs)
    assert all(r.src != r.dst for r in reqs)
    assert all(r.episode == -1 for r in reqs)
    # Expected count: hosts * duration / interval, within 20%.
    expected = len(HOSTS) * DAY / 600.0
    assert expected * 0.8 < len(reqs) < expected * 1.2


def test_uniform_each_host_measures():
    reqs = list(uniform_per_server(HOSTS, DAY, 600.0, seed=2))
    sources = {r.src for r in reqs}
    assert sources == set(HOSTS)


def test_uniform_target_restriction():
    targets = HOSTS[:3]
    reqs = list(uniform_per_server(HOSTS, DAY, 600.0, seed=3, targets=targets))
    assert {r.dst for r in reqs} <= set(targets)
    assert {r.src for r in reqs} == set(HOSTS)  # limiters still measure


def test_uniform_unknown_target_rejected():
    with pytest.raises(SchedulerError):
        list(uniform_per_server(HOSTS, DAY, 600.0, targets=["nope"]))


def test_uniform_deterministic():
    a = list(uniform_per_server(HOSTS, DAY, 600.0, seed=9))
    b = list(uniform_per_server(HOSTS, DAY, 600.0, seed=9))
    assert a == b


def test_poisson_pairs_properties():
    reqs = list(poisson_pairs(HOSTS, DAY, 120.0, seed=1))
    times = np.array([r.t for r in reqs])
    assert np.all(np.diff(times) >= 0)
    gaps = np.diff(times)
    # Exponential gaps: coefficient of variation near 1.
    assert 0.8 < gaps.std() / gaps.mean() < 1.2
    assert abs(gaps.mean() - 120.0) / 120.0 < 0.15


def test_poisson_pairs_cover_all_pairs_eventually():
    reqs = list(poisson_pairs(HOSTS, 20 * DAY, 60.0, seed=4))
    pairs = {(r.src, r.dst) for r in reqs}
    assert len(pairs) == len(HOSTS) * (len(HOSTS) - 1)


def test_episodes_measure_all_pairs_per_episode():
    reqs = list(poisson_episodes(HOSTS, DAY, 3600.0, seed=1))
    by_episode: dict[int, set] = {}
    for r in reqs:
        assert r.episode >= 0
        by_episode.setdefault(r.episode, set()).add((r.src, r.dst))
    n_pairs = len(HOSTS) * (len(HOSTS) - 1)
    for episode, pairs in by_episode.items():
        assert len(pairs) == n_pairs, f"episode {episode} incomplete"


def test_episodes_are_time_windowed():
    reqs = list(poisson_episodes(HOSTS, DAY, 3600.0, seed=2, spread_s=60.0))
    by_episode: dict[int, list[float]] = {}
    for r in reqs:
        by_episode.setdefault(r.episode, []).append(r.t)
    for times in by_episode.values():
        assert max(times) - min(times) <= 60.0


def test_round_robin_counts():
    reqs = list(round_robin_pairs(HOSTS, repetitions=4, duration_s=DAY, seed=1))
    n_pairs = len(HOSTS) * (len(HOSTS) - 1)
    assert len(reqs) == 4 * n_pairs
    times = [r.t for r in reqs]
    assert times == sorted(times)


def test_round_robin_rejects_bad_reps():
    with pytest.raises(SchedulerError):
        list(round_robin_pairs(HOSTS, repetitions=0, duration_s=DAY))


@given(
    n_hosts=st.integers(min_value=2, max_value=6),
    interval=st.floats(min_value=30.0, max_value=7200.0),
    seed=st.integers(min_value=0, max_value=100),
)
@settings(max_examples=20, deadline=None)
def test_poisson_respects_duration_and_identity(n_hosts, interval, seed):
    hosts = [f"x{i}" for i in range(n_hosts)]
    reqs = list(poisson_pairs(hosts, DAY, interval, seed=seed))
    assert all(0 <= r.t < DAY for r in reqs)
    assert all(r.src != r.dst for r in reqs)


def test_validation_errors():
    with pytest.raises(SchedulerError):
        list(poisson_pairs(["only"], DAY, 60.0))
    with pytest.raises(SchedulerError):
        list(poisson_pairs(HOSTS, -1.0, 60.0))
    with pytest.raises(SchedulerError):
        list(poisson_pairs(HOSTS, DAY, 0.0))
    with pytest.raises(SchedulerError):
        list(poisson_pairs(["a", "a", "b"], DAY, 60.0))

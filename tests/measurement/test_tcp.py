"""Tests for the Mathis model and TCP transfer simulation."""

import itertools

import numpy as np
import pytest
from hypothesis import given, strategies as st

from repro.measurement.tcp import (
    MATHIS_C,
    TCPTransferSimulator,
    bottleneck_capacity_kbps,
    mathis_bandwidth_kbps,
    mathis_bandwidth_kbps_array,
)
from repro.netsim import PathSampler


def test_mathis_known_value():
    # MSS 1460 B, RTT 100 ms, p = 1%: 1460/0.1 * 1.2247/0.1 = ~178.8 kB/s.
    bw = mathis_bandwidth_kbps(100.0, 0.01)
    expected = (1460 / 0.1) * (MATHIS_C / 0.1) / 1000.0
    assert bw == pytest.approx(expected)


def test_mathis_input_validation():
    with pytest.raises(ValueError):
        mathis_bandwidth_kbps(0.0, 0.01)
    with pytest.raises(ValueError):
        mathis_bandwidth_kbps(100.0, 0.0)


@given(
    rtt=st.floats(min_value=1.0, max_value=2000.0),
    p=st.floats(min_value=1e-4, max_value=0.5),
)
def test_mathis_monotonicity(rtt, p):
    base = mathis_bandwidth_kbps(rtt, p)
    assert mathis_bandwidth_kbps(rtt * 2, p) == pytest.approx(base / 2)
    assert mathis_bandwidth_kbps(rtt, p * 4) == pytest.approx(base / 2)


def test_mathis_array_matches_scalar():
    rtts = np.array([50.0, 100.0, 400.0])
    losses = np.array([0.01, 0.02, 0.05])
    np.testing.assert_allclose(
        mathis_bandwidth_kbps_array(rtts, losses),
        [mathis_bandwidth_kbps(r, p) for r, p in zip(rtts, losses)],
    )


@pytest.fixture(scope="module")
def paths(topo1999, resolver):
    names = topo1999.host_names()[:5]
    return [
        resolver.resolve_round_trip(a, b)
        for a, b in itertools.permutations(names, 2)
    ]


def test_bottleneck_capacity(topo1999, paths):
    for rt in paths[:5]:
        cap = bottleneck_capacity_kbps(topo1999, rt)
        link_caps = [topo1999.links[l].capacity_mbps for l in rt.link_ids]
        assert cap == pytest.approx(min(link_caps) * 1000.0 / 8.0)


def test_transfer_results_consistent(topo1999, conditions, paths, rng):
    sim = TCPTransferSimulator(topo1999, paths)
    sampler = PathSampler(conditions, paths)
    view = sampler.view(86400.0)
    for index in range(len(paths)):
        result = sim.measure(view, index, rng)
        assert result.rtt_ms > 0
        assert 0.0 < result.loss_rate < 1.0
        assert result.bandwidth_kbps > 0
        # Achieved rate never exceeds the bottleneck.
        assert result.bandwidth_kbps <= bottleneck_capacity_kbps(
            topo1999, paths[index]
        ) * 1.1


def test_transfer_bandwidth_below_steady_state_mathis(
    topo1999, conditions, paths, rng
):
    """Short transfers cannot beat the steady-state model at the same
    observed rtt/loss (slow-start penalty plus caps)."""
    sim = TCPTransferSimulator(topo1999, paths)
    sampler = PathSampler(conditions, paths)
    view = sampler.view(86400.0)
    for index in range(len(paths)):
        result = sim.measure(view, index, rng)
        ceiling = mathis_bandwidth_kbps(result.rtt_ms, result.loss_rate)
        assert result.bandwidth_kbps <= ceiling * 1.1

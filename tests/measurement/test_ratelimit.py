"""Tests for ICMP rate limiting and its detection."""

import numpy as np
from hypothesis import given, settings, strategies as st

from repro.datasets.dataset import Dataset, DatasetMeta
from repro.measurement.records import TracerouteRecord
from repro.measurement.ratelimit import (
    TokenBucket,
    detect_rate_limiters,
    flagged_hosts,
)


def test_unlimited_bucket_always_allows():
    bucket = TokenBucket(rate_per_min=0.0)
    assert all(bucket.allow(t) for t in range(100))


def test_bucket_burst_then_refill():
    bucket = TokenBucket(rate_per_min=6.0, burst=2.0)  # one token per 10 s
    assert bucket.allow(0.0)
    assert bucket.allow(0.5)
    assert not bucket.allow(1.0)   # burst exhausted
    assert not bucket.allow(5.0)
    assert bucket.allow(11.0)      # one token refilled


def test_bucket_default_burst_is_single_token():
    bucket = TokenBucket(rate_per_min=6.0)
    assert bucket.allow(0.0)
    assert not bucket.allow(1.0)
    assert not bucket.allow(2.0)


def test_bucket_traceroute_pattern():
    """The paper's footnote: the first of three back-to-back probes gets
    through; the followers are more likely to be dropped."""
    bucket = TokenBucket(rate_per_min=6.0)
    results = []
    for invocation in range(5):
        t0 = invocation * 120.0  # well-spaced invocations
        results.append([bucket.allow(t0 + k) for k in range(3)])
    for first, second, third in results:
        assert first
        assert not second
        assert not third


@given(
    rate=st.floats(min_value=1.0, max_value=120.0),
    burst=st.floats(min_value=1.0, max_value=5.0),
    gaps=st.lists(st.floats(min_value=0.01, max_value=30.0), min_size=5, max_size=60),
)
@settings(max_examples=30, deadline=None)
def test_bucket_never_exceeds_sustained_rate(rate, burst, gaps):
    bucket = TokenBucket(rate_per_min=rate, burst=burst)
    t = 0.0
    allowed = 0
    for gap in gaps:
        t += gap
        if bucket.allow(t):
            allowed += 1
    # Long-run bound: burst + rate * elapsed.
    assert allowed <= burst + rate * t / 60.0 + 1.0


def _synthetic_dataset(limited: set[str], loss_toward_limited: float) -> Dataset:
    """Hand-built dataset where paths toward `limited` hosts lose probes."""
    hosts = [f"h{i}" for i in range(6)]
    rng = np.random.default_rng(0)
    records = []
    for src in hosts:
        for dst in hosts:
            if src == dst:
                continue
            p = loss_toward_limited if dst in limited else 0.01
            for k in range(25):
                samples = tuple(
                    float("nan") if rng.random() < p else 100.0 + rng.normal(0, 5)
                    for _ in range(3)
                )
                records.append(
                    TracerouteRecord(t=k * 600.0, src=src, dst=dst, rtt_samples=samples)
                )
    return Dataset(
        meta=DatasetMeta(
            name="synthetic", method="traceroute", year=1999,
            duration_days=1, location="North America",
        ),
        hosts=hosts,
        traceroutes=records,
    )


def test_detector_flags_limiters():
    limited = {"h1", "h4"}
    ds = _synthetic_dataset(limited, loss_toward_limited=0.4)
    verdicts = detect_rate_limiters(ds)
    assert set(flagged_hosts(verdicts)) == limited


def test_detector_clean_dataset_flags_nothing():
    ds = _synthetic_dataset(set(), loss_toward_limited=0.0)
    assert flagged_hosts(detect_rate_limiters(ds)) == []


def test_detector_ignores_symmetric_congestion():
    """A hot access link inflates both directions; must not be flagged."""
    hosts = ["a", "b", "c", "d"]
    rng = np.random.default_rng(1)
    records = []
    congested = "a"
    for src in hosts:
        for dst in hosts:
            if src == dst:
                continue
            p = 0.2 if congested in (src, dst) else 0.01
            for k in range(25):
                samples = tuple(
                    float("nan") if rng.random() < p else 80.0 for _ in range(3)
                )
                records.append(
                    TracerouteRecord(t=k * 600.0, src=src, dst=dst, rtt_samples=samples)
                )
    ds = Dataset(
        meta=DatasetMeta(
            name="cong", method="traceroute", year=1999,
            duration_days=1, location="North America",
        ),
        hosts=hosts,
        traceroutes=records,
    )
    assert flagged_hosts(detect_rate_limiters(ds)) == []


def test_detector_end_to_end_with_simulator(topo1999, conditions, resolver):
    """On simulated collection, detection recall should be high with no
    false flags among clearly clean hosts."""
    from repro.measurement import Campaign, round_robin_pairs
    from repro.netsim import SECONDS_PER_DAY

    hosts = topo1999.host_names()
    truth = {h for h in hosts if topo1999.host(h).rate_limits_icmp}
    assert truth, "fixture should include rate limiters"
    campaign = Campaign(topo1999, conditions, hosts, resolver=resolver, seed=21)
    requests = round_robin_pairs(hosts, repetitions=6, duration_s=SECONDS_PER_DAY, seed=21)
    records, _ = campaign.run_traceroutes(requests)
    ds = Dataset(
        meta=DatasetMeta(
            name="scan", method="traceroute", year=1999,
            duration_days=1, location="North America",
        ),
        hosts=hosts,
        traceroutes=records,
    )
    flagged = set(flagged_hosts(detect_rate_limiters(ds)))
    recall = len(flagged & truth) / len(truth)
    assert recall >= 0.8
    assert len(flagged - truth) <= 1

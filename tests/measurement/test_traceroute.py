"""Tests for the per-hop traceroute simulator."""

import math

import numpy as np
import pytest

from repro.measurement.traceroute import TracerouteTool


@pytest.fixture(scope="module")
def tool(topo1999, conditions):
    return TracerouteTool(topo1999, conditions)


@pytest.fixture(scope="module")
def round_trip(topo1999, resolver):
    names = topo1999.host_names()
    return resolver.resolve_round_trip(names[0], names[1])


def test_one_hop_per_forward_link(tool, round_trip, rng):
    result = tool.trace(round_trip, t=86400.0, rng=rng)
    assert len(result.hops) == len(round_trip.forward.links)
    assert result.src == round_trip.forward.src
    assert result.dst == round_trip.forward.dst


def test_hop_ttls_and_labels(tool, round_trip, rng, topo1999):
    result = tool.trace(round_trip, t=86400.0, rng=rng)
    for i, hop in enumerate(result.hops, start=1):
        assert hop.ttl == i
        assert hop.label == topo1999.routers[hop.router_id].label
        assert len(hop.rtt_ms) == 3


def test_rtts_roughly_increase_with_depth(tool, round_trip, rng):
    """Cumulative prefix delay: later hops respond no sooner than the
    first hop (modulo jitter, compare medians of first vs last)."""
    result = tool.trace(round_trip, t=86400.0, rng=rng)
    first = [r for r in result.hops[0].rtt_ms if not math.isnan(r)]
    last = [r for r in result.hops[-1].rtt_ms if not math.isnan(r)]
    if first and last:
        assert np.median(last) > np.median(first)


def test_final_hop_consistent_with_prop_delay(tool, round_trip, rng):
    result = tool.trace(round_trip, t=86400.0, rng=rng)
    finite = [r for r in result.final_hop.rtt_ms if not math.isnan(r)]
    if finite:
        # Final-hop RTT covers at least the forward propagation twice
        # (the probe and the ICMP response retrace the distance).
        assert min(finite) >= 2 * round_trip.forward.prop_delay_ms


def test_as_path_recovery(tool, round_trip, rng, topo1999):
    result = tool.trace(round_trip, t=86400.0, rng=rng)
    as_path = result.as_path(topo1999)
    # Responders start at the first hop past the source NIC, which is
    # still inside the source AS, so the AS sequences must match exactly.
    assert as_path == round_trip.forward.as_path


def test_probe_count_override(tool, round_trip, rng):
    result = tool.trace(round_trip, t=86400.0, rng=rng, probes_per_hop=5)
    assert all(len(h.rtt_ms) == 5 for h in result.hops)


def test_determinism_with_same_rng_state(tool, round_trip):
    r1 = tool.trace(round_trip, t=86400.0, rng=np.random.default_rng(7))
    r2 = tool.trace(round_trip, t=86400.0, rng=np.random.default_rng(7))
    assert len(r1.hops) == len(r2.hops)
    for h1, h2 in zip(r1.hops, r2.hops):
        assert (h1.ttl, h1.router_id, h1.label) == (h2.ttl, h2.router_id, h2.label)
        for s1, s2 in zip(h1.rtt_ms, h2.rtt_ms):
            # NaN == NaN is False, so compare lost probes explicitly.
            assert (math.isnan(s1) and math.isnan(s2)) or s1 == s2

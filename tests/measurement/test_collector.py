"""Tests for the campaign collector."""

import math

import numpy as np
import pytest

from repro.measurement.collector import Campaign, CampaignError
from repro.measurement.schedulers import Request, poisson_episodes, poisson_pairs
from repro.netsim import SECONDS_PER_DAY, SECONDS_PER_HOUR


@pytest.fixture(scope="module")
def campaign(topo1999, conditions, resolver):
    return Campaign(
        topo1999,
        conditions,
        topo1999.host_names()[:6],
        resolver=resolver,
        seed=31,
        control_failure_prob=0.05,
    )


def test_campaign_needs_two_hosts(topo1999, conditions):
    with pytest.raises(CampaignError):
        Campaign(topo1999, conditions, topo1999.host_names()[:1])


def test_campaign_validates_probabilities(topo1999, conditions):
    hosts = topo1999.host_names()[:3]
    with pytest.raises(CampaignError):
        Campaign(topo1999, conditions, hosts, control_failure_prob=1.0)
    with pytest.raises(CampaignError):
        Campaign(topo1999, conditions, hosts, pair_blackout_prob=-0.1)


def test_path_info_covers_all_pairs(campaign):
    info = campaign.path_info()
    hosts = campaign.hosts
    assert len(info) == len(hosts) * (len(hosts) - 1)
    for (src, dst), pi in info.items():
        assert pi.src == src and pi.dst == dst
        assert pi.prop_delay_ms > 0
        assert pi.hop_count > 2
        assert len(pi.as_path) >= 1


def test_run_traceroutes_records(campaign):
    hosts = campaign.hosts
    requests = list(poisson_pairs(hosts, SECONDS_PER_DAY / 4, 120.0, seed=33))
    records, stats = campaign.run_traceroutes(requests)
    assert stats.requested == len(requests)
    assert stats.completed == len(records)
    assert stats.completed + stats.failed_requests == stats.requested
    assert stats.blacked_out == 0  # no blackout configured
    # ~5% control failures.
    assert 0.0 < stats.control_failures / stats.requested < 0.15
    for rec in records[:50]:
        assert len(rec.rtt_samples) == 3
        assert rec.episode == -1
        finite = [r for r in rec.rtt_samples if not math.isnan(r)]
        assert all(r > 0 for r in finite)


def test_run_traceroutes_rejects_unknown_pair(campaign):
    with pytest.raises(CampaignError):
        campaign.run_traceroutes([Request(t=0.0, src="nope", dst="also-nope")])


def test_blackout_pairs_never_complete(topo1999, conditions, resolver):
    hosts = topo1999.host_names()[:6]
    campaign = Campaign(
        topo1999,
        conditions,
        hosts,
        resolver=resolver,
        seed=37,
        control_failure_prob=0.0,
        pair_blackout_prob=0.3,
    )
    requests = list(poisson_pairs(hosts, SECONDS_PER_DAY, 60.0, seed=39))
    records, stats = campaign.run_traceroutes(requests)
    measured = {(r.src, r.dst) for r in records}
    possible = len(hosts) * (len(hosts) - 1)
    # Roughly 30% of pairs are blacked out.
    assert len(measured) < possible
    # Blackouts are persistent failures, counted apart from the transient
    # control failures (of which this campaign has none).
    assert stats.blacked_out > 0
    assert stats.control_failures == 0
    assert stats.failed_requests == stats.blacked_out
    assert stats.completed + stats.blacked_out == stats.requested
    # Blackout must be consistent: no blacked-out pair ever completes.
    requested_pairs = {(r.src, r.dst) for r in requests}
    blocked = requested_pairs - measured
    assert blocked, "expected some blocked pairs"


def test_rate_limited_destination_loses_followup_probes(
    topo1999, conditions, resolver
):
    limited = [h for h in topo1999.host_names() if topo1999.host(h).rate_limits_icmp]
    clean = [h for h in topo1999.host_names() if not topo1999.host(h).rate_limits_icmp]
    hosts = [clean[0], limited[0]]
    campaign = Campaign(
        topo1999, conditions, hosts, resolver=resolver, seed=41,
        control_failure_prob=0.0,
    )
    # Widely spaced requests toward the limiter.
    requests = [
        Request(t=i * 1200.0, src=hosts[0], dst=hosts[1]) for i in range(50)
    ]
    records, stats = campaign.run_traceroutes(requests)
    assert stats.rate_limited_probes > 30
    # First probes mostly answered; later probes mostly suppressed.
    first_losses = np.mean([math.isnan(r.rtt_samples[0]) for r in records])
    later_losses = np.mean(
        [math.isnan(s) for r in records for s in r.rtt_samples[1:]]
    )
    assert later_losses > 0.5
    assert first_losses < later_losses


def test_interleaved_requests_rate_limited_in_global_time_order(
    topo1999, conditions, resolver
):
    """Regression: overlapping requests toward one rate-limited host must
    feed the destination's token bucket in global probe-time order.

    The old per-request feeding violated the bucket's nondecreasing-time
    contract: a later-fed request's earlier probe hit the elapsed-time
    clamp (swallowing refill credit) and then rewound the bucket clock,
    letting a subsequent probe harvest refill time that had already been
    consumed — here that spuriously answered a mid-burst probe.
    """
    dst = next(
        h.name for h in topo1999.hosts if h.icmp_rate_limit_per_min == 12.0
    )
    src = next(h.name for h in topo1999.hosts if not h.rate_limits_icmp)
    campaign = Campaign(
        topo1999, conditions, [src, dst], resolver=resolver, seed=53,
        control_failure_prob=0.0,
    )
    # Weekend night: loss probability is negligible, so every NaN below
    # is a suppression, not a genuine loss (checked by the exact counts).
    t0 = 6 * SECONDS_PER_DAY + 10 * SECONDS_PER_HOUR
    requests = [
        Request(t=t0 + off, src=src, dst=dst) for off in (0.0, 0.5, 1.0)
    ]
    records, stats = campaign.run_traceroutes(requests)
    assert len(records) == 3
    # Nine probes arrive within three seconds at a 12/min bucket
    # (0.2 tokens/s, burst 1): the first is answered from the full bucket
    # and no later arrival ever sees a whole token of refill, so exactly
    # eight are suppressed.  The old ordering answered a ninth probe.
    assert stats.rate_limited_probes == 8
    samples = [s for r in records for s in r.rtt_samples]
    assert sum(math.isnan(s) for s in samples) == 8
    assert not math.isnan(records[0].rtt_samples[0])


def test_run_transfers_records(campaign):
    hosts = campaign.hosts
    requests = list(poisson_pairs(hosts, SECONDS_PER_DAY / 4, 300.0, seed=43))
    records, stats = campaign.run_transfers(requests)
    assert stats.completed == len(records)
    for rec in records:
        assert rec.rtt_ms > 0
        assert 0.0 < rec.loss_rate < 1.0
        assert rec.bandwidth_kbps > 0


def test_episode_ids_preserved(campaign):
    hosts = campaign.hosts
    requests = list(poisson_episodes(hosts, SECONDS_PER_DAY / 2, 7200.0, seed=45))
    records, _ = campaign.run_traceroutes(requests)
    episodes = {r.episode for r in records}
    assert episodes
    assert all(e >= 0 for e in episodes)


def test_collection_is_deterministic(topo1999, conditions, resolver):
    hosts = topo1999.host_names()[:4]
    requests = list(poisson_pairs(hosts, SECONDS_PER_DAY / 8, 120.0, seed=47))

    def run():
        campaign = Campaign(
            topo1999, conditions, hosts, resolver=resolver, seed=49
        )
        return campaign.run_traceroutes(list(requests))[0]

    a, b = run(), run()
    assert len(a) == len(b)
    for ra, rb in zip(a, b):
        assert ra.src == rb.src and ra.dst == rb.dst and ra.t == rb.t
        for sa, sb in zip(ra.rtt_samples, rb.rtt_samples):
            assert (math.isnan(sa) and math.isnan(sb)) or sa == sb

"""Differential tests: batched measurement pipeline vs the scalar path.

The vectorized probe/transfer generation must be *byte-identical* to the
retained scalar reference implementations (same pattern as
tests/routing/test_bgp_equivalence.py): every probe consumes a fixed
block of uniform draws whether batched or scalar, so both paths walk the
identical generator stream and the float arithmetic is applied in the
identical order.  These tests compare full campaign outputs across seeds
and both the static and flapping samplers, plus the lower layers
(probe_block / probe_batch / ping) one by one.
"""

import itertools
import math

import numpy as np
import pytest

from repro.measurement import Campaign, PingTool
from repro.measurement.schedulers import poisson_pairs
from repro.netsim import DRAWS_PER_PROBE, PathSampler, SECONDS_PER_DAY
from repro.netsim.dynamics import DynamicPathSampler
from repro.routing.dynamics import RouteFlapModel

SEEDS = [0, 1, 2]


def _campaign(topo, conditions, resolver, seed, flap):
    hosts = topo.host_names()[:8]
    model = (
        RouteFlapModel(flappy_fraction=0.4, flap_probability=0.2, seed=seed)
        if flap
        else None
    )
    campaign = Campaign(
        topo,
        conditions,
        hosts,
        resolver=resolver,
        seed=seed,
        control_failure_prob=0.05,
        pair_blackout_prob=0.1,
        flap_model=model,
    )
    return campaign, hosts


def _assert_stats_equal(a, b):
    assert a.requested == b.requested
    assert a.completed == b.completed
    assert a.control_failures == b.control_failures
    assert a.blacked_out == b.blacked_out
    assert a.rate_limited_probes == b.rate_limited_probes


@pytest.mark.parametrize("flap", [False, True], ids=["static", "flap"])
@pytest.mark.parametrize("seed", SEEDS)
def test_traceroutes_batched_equals_scalar(
    topo1999, conditions, resolver, seed, flap
):
    fast, hosts = _campaign(topo1999, conditions, resolver, seed, flap)
    oracle, _ = _campaign(topo1999, conditions, resolver, seed, flap)
    requests = list(
        poisson_pairs(hosts, SECONDS_PER_DAY / 4, 40.0, seed=seed + 100)
    )
    fast_records, fast_stats = fast.run_traceroutes(requests)
    ref_records, ref_stats = oracle.run_traceroutes_scalar(requests)
    _assert_stats_equal(fast_stats, ref_stats)
    assert len(fast_records) == len(ref_records)
    for a, b in zip(fast_records, ref_records):
        assert (a.t, a.src, a.dst, a.episode) == (b.t, b.src, b.dst, b.episode)
        # NaN-aware byte equality, probe for probe.
        np.testing.assert_array_equal(
            np.array(a.rtt_samples), np.array(b.rtt_samples)
        )


@pytest.mark.parametrize("flap", [False, True], ids=["static", "flap"])
@pytest.mark.parametrize("seed", SEEDS)
def test_transfers_batched_equals_scalar(
    topo1999, conditions, resolver, seed, flap
):
    fast, hosts = _campaign(topo1999, conditions, resolver, seed, flap)
    oracle, _ = _campaign(topo1999, conditions, resolver, seed, flap)
    requests = list(
        poisson_pairs(hosts, SECONDS_PER_DAY / 4, 60.0, seed=seed + 200)
    )
    fast_records, fast_stats = fast.run_transfers(requests)
    ref_records, ref_stats = oracle.run_transfers_scalar(requests)
    _assert_stats_equal(fast_stats, ref_stats)
    assert fast_records == ref_records  # exact float equality, field for field


@pytest.fixture(scope="module")
def static_sampler(topo1999, conditions, resolver):
    names = topo1999.host_names()[:6]
    paths = [
        resolver.resolve_round_trip(a, b)
        for a, b in itertools.permutations(names, 2)
    ]
    return PathSampler(conditions, paths)


@pytest.fixture(scope="module")
def dynamic_sampler(topo1999, conditions, resolver):
    names = topo1999.host_names()[:6]
    pairs = list(itertools.permutations(names, 2))
    primaries = [resolver.resolve_round_trip(a, b) for a, b in pairs]
    secondaries = [
        resolver.resolve_round_trip_secondary(a, b) for a, b in pairs
    ]
    model = RouteFlapModel(flappy_fraction=0.5, flap_probability=0.3, seed=7)
    return DynamicPathSampler(conditions, primaries, secondaries, model)


@pytest.mark.parametrize("seed", SEEDS)
def test_probe_block_equals_probe_pair_loop(static_sampler, seed):
    view = static_sampler.view(SECONDS_PER_DAY)
    rng_fast = np.random.default_rng(seed)
    rng_ref = np.random.default_rng(seed)
    batch = view.probe_block(rng_fast)
    reference = np.array(
        [view.probe_pair(i, rng_ref) for i in range(len(static_sampler))]
    )
    np.testing.assert_array_equal(batch.rtt_ms, reference)
    np.testing.assert_array_equal(batch.lost, np.isnan(reference))


@pytest.mark.parametrize("sampler_name", ["static_sampler", "dynamic_sampler"])
@pytest.mark.parametrize("seed", SEEDS)
def test_probe_batch_equals_scalar_loop(sampler_name, seed, request):
    """probe_batch over mixed times/indices == per-probe bucket_view loop."""
    sampler = request.getfixturevalue(sampler_name)
    ts = SECONDS_PER_DAY + np.linspace(0.0, 3600.0, 200)
    idx = np.arange(200) % len(sampler)
    rng_fast = np.random.default_rng(seed)
    rng_ref = np.random.default_rng(seed)
    fast = sampler.probe_batch(ts, rng_fast, indices=idx)
    reference = np.array(
        [
            sampler.bucket_view(float(t)).probe_pair(int(i), rng_ref)
            for t, i in zip(ts, idx)
        ]
    )
    np.testing.assert_array_equal(fast, reference)


def test_probe_consumes_fixed_draws(static_sampler):
    """A probe round advances the generator by exactly DRAWS_PER_PROBE
    uniforms per path — the invariant the stream equivalence rests on."""
    n = len(static_sampler)
    rng = np.random.default_rng(11)
    static_sampler.probe(SECONDS_PER_DAY, rng)
    probed_next = np.random.default_rng(11)
    probed_next.random(n * DRAWS_PER_PROBE)
    assert rng.random() == probed_next.random()


@pytest.mark.parametrize("seed", SEEDS)
def test_ping_equals_scalar_loop(topo1999, conditions, resolver, seed):
    names = topo1999.host_names()
    round_trip = resolver.resolve_round_trip(names[0], names[1])
    tool = PingTool(conditions)
    count, interval_s = 20, 30.0
    result = tool.ping(
        round_trip,
        t=SECONDS_PER_DAY,
        rng=np.random.default_rng(seed),
        count=count,
        interval_s=interval_s,
    )
    sampler = PathSampler(conditions, [round_trip])
    rng_ref = np.random.default_rng(seed)
    times = SECONDS_PER_DAY + np.arange(count) * interval_s
    reference = [
        sampler.bucket_view(float(t)).probe_pair(0, rng_ref) for t in times
    ]
    answered = [r for r in reference if not math.isnan(r)]
    assert result.received == len(answered)
    np.testing.assert_array_equal(np.array(result.rtts_ms), np.array(answered))

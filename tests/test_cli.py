"""Tests for the repro command-line interface."""

import pytest

from repro.cli import build_parser, main


def test_parser_requires_command():
    with pytest.raises(SystemExit):
        build_parser().parse_args([])


def test_traceroute_command(capsys):
    rc = main(["traceroute", "--seed", "7", "--src", "0", "--dst", "1"])
    assert rc == 0
    out = capsys.readouterr().out
    assert out.startswith("traceroute from")
    assert "AS path:" in out


def test_build_and_analyze_roundtrip(tmp_path, monkeypatch, capsys):
    monkeypatch.setenv("REPRO_CACHE_DIR", str(tmp_path / "cache"))
    out = tmp_path / "uw4b.jsonl"
    rc = main(
        ["build", "--dataset", "UW4-B", "--seed", "61", "--scale", "0.05",
         "-o", str(out)]
    )
    assert rc == 0
    assert out.exists()
    assert "wrote" in capsys.readouterr().out

    rc = main(["analyze", str(out), "--metric", "rtt", "--min-samples", "2"])
    assert rc == 0
    text = capsys.readouterr().out
    assert "alternate superior" in text
    assert "improvement CDF" in text


def test_build_unknown_dataset(tmp_path, capsys):
    rc = main(
        ["build", "--dataset", "NOPE", "--scale", "0.02",
         "-o", str(tmp_path / "x.jsonl")]
    )
    assert rc == 2
    assert "unknown dataset" in capsys.readouterr().err


def test_analyze_bandwidth_metric(tmp_path, capsys):
    out = tmp_path / "n2.jsonl"
    assert main(
        ["build", "--dataset", "N2-NA", "--seed", "61", "--scale", "0.05",
         "-o", str(out)]
    ) == 0
    capsys.readouterr()
    rc = main(
        ["analyze", str(out), "--metric", "bandwidth",
         "--loss-composition", "optimistic"]
    )
    assert rc == 0
    assert "bandwidth" in capsys.readouterr().out


def test_analyze_too_strict_min_samples(tmp_path, capsys):
    out = tmp_path / "d.jsonl"
    assert main(
        ["build", "--dataset", "UW4-B", "--seed", "61", "--scale", "0.05",
         "-o", str(out)]
    ) == 0
    rc = main(["analyze", str(out), "--min-samples", "100000"])
    assert rc == 1


def test_reproduce_subcommand(tmp_path, monkeypatch, capsys):
    monkeypatch.setenv("REPRO_CACHE_DIR", str(tmp_path / "cache"))
    rc = main(
        ["reproduce", "--scale", "0.02", "--seed", "55", "--only", "table1"]
    )
    assert rc == 0
    assert "table1" in capsys.readouterr().out


def test_suite_subcommand(tmp_path, monkeypatch, capsys):
    monkeypatch.setenv("REPRO_CACHE_DIR", str(tmp_path / "cache"))
    rc = main(["suite", "--scale", "0.02", "--seed", "55", "--jobs", "1"])
    assert rc == 0
    text = capsys.readouterr().out
    assert "dataset provisioning" in text
    assert "UW3" in text
    # Second invocation is served from cache.
    rc = main(["suite", "--scale", "0.02", "--seed", "55"])
    assert rc == 0
    assert "8 cache hit(s)" in capsys.readouterr().out


def test_summarize_subcommand(tmp_path, capsys):
    out = tmp_path / "s.jsonl"
    assert main(
        ["build", "--dataset", "UW4-B", "--seed", "61", "--scale", "0.05",
         "-o", str(out)]
    ) == 0
    capsys.readouterr()
    rc = main(["summarize", str(out)])
    assert rc == 0
    text = capsys.readouterr().out
    assert "RTT ms" in text
    assert "coverage" in text


def test_map_subcommand(tmp_path, capsys):
    out = tmp_path / "topo.svg"
    rc = main(["map", "--seed", "3", "--hosts", "6", "-o", str(out)])
    assert rc == 0
    assert out.exists()
    assert out.read_text().startswith("<svg")


def test_suite_bad_fault_plan_exits_2(tmp_path, monkeypatch, capsys):
    monkeypatch.setenv("REPRO_CACHE_DIR", str(tmp_path / "cache"))
    rc = main(["suite", "--scale", "0.02", "--fault-plan", "explode:uw3"])
    assert rc == 2
    assert "bad fault plan" in capsys.readouterr().err


def test_reproduce_bad_fault_plan_exits_2(tmp_path, monkeypatch, capsys):
    monkeypatch.setenv("REPRO_CACHE_DIR", str(tmp_path / "cache"))
    rc = main(["reproduce", "--scale", "0.02", "--fault-plan", "[{]"])
    assert rc == 2
    assert "bad fault plan" in capsys.readouterr().err


def test_suite_keep_going_partial_exits_3(tmp_path, monkeypatch, capsys):
    monkeypatch.setenv("REPRO_CACHE_DIR", str(tmp_path / "cache"))
    rc = main(
        [
            "suite", "--scale", "0.02", "--seed", "55", "--jobs", "1",
            "--fault-plan", "fail:uw3:times=99", "--keep-going",
        ]
    )
    assert rc == 3
    out = capsys.readouterr().out
    uw3_line = next(ln for ln in out.splitlines() if ln.strip().startswith("UW3"))
    assert "MISSING" in uw3_line
    assert "FAILED: uw3" in out


def test_suite_build_failure_exits_1(tmp_path, monkeypatch, capsys):
    monkeypatch.setenv("REPRO_CACHE_DIR", str(tmp_path / "cache"))
    rc = main(
        [
            "suite", "--scale", "0.02", "--seed", "55", "--jobs", "1",
            "--fault-plan", "fail:uw3:times=99",
        ]
    )
    assert rc == 1
    assert "dataset build failed" in capsys.readouterr().err


def test_help_documents_exit_codes(capsys):
    with pytest.raises(SystemExit):
        main(["--help"])
    out = capsys.readouterr().out
    assert "exit codes" in out
    assert "partial success" in out


def test_help_documents_command_surface(capsys):
    with pytest.raises(SystemExit):
        main(["--help"])
    out = capsys.readouterr().out
    assert "command surface" in out
    for command in ("analyze", "suite", "reproduce", "trace", "check"):
        assert command in out


def test_analyze_flag_alias_matches_positional(tmp_path, capsys):
    out = tmp_path / "d.jsonl"
    assert main(
        ["build", "--dataset", "UW4-B", "--seed", "61", "--scale", "0.05",
         "-o", str(out)]
    ) == 0
    capsys.readouterr()
    assert main(["analyze", "--dataset-file", str(out), "--min-samples", "2"]) == 0
    flagged = capsys.readouterr().out
    assert main(["analyze", str(out), "--min-samples", "2"]) == 0
    positional = capsys.readouterr().out
    assert flagged == positional


def test_analyze_conflicting_paths_exit_2(tmp_path, capsys):
    rc = main(
        ["analyze", str(tmp_path / "a.jsonl"),
         "--dataset-file", str(tmp_path / "b.jsonl")]
    )
    assert rc == 2
    assert "conflicting" in capsys.readouterr().err


def test_analyze_missing_path_exit_2(capsys):
    rc = main(["analyze"])
    assert rc == 2
    assert "--dataset-file" in capsys.readouterr().err


def test_summarize_flag_alias(tmp_path, capsys):
    out = tmp_path / "d.jsonl"
    assert main(
        ["build", "--dataset", "UW4-B", "--seed", "61", "--scale", "0.05",
         "-o", str(out)]
    ) == 0
    capsys.readouterr()
    assert main(["summarize", "--dataset-file", str(out)]) == 0
    assert main(["summarize"]) == 2


def test_suite_trace_writes_artifacts(tmp_path, monkeypatch, capsys):
    monkeypatch.setenv("REPRO_CACHE_DIR", str(tmp_path / "cache"))
    trace_file = tmp_path / "out.json"
    rc = main(
        ["suite", "--scale", "0.02", "--seed", "55", "--jobs", "1",
         "--trace", str(trace_file)]
    )
    assert rc == 0
    assert "wrote trace" in capsys.readouterr().out
    assert trace_file.exists()
    assert (tmp_path / "metrics.json").exists()

    rc = main(["trace", str(trace_file), "--validate", "--top", "3"])
    assert rc == 0
    out = capsys.readouterr().out
    assert "valid RunTrace" in out
    assert "top 3 slowest span(s):" in out
    assert "datasets.provision" in out

    rc = main(["trace", "--trace-file", str(trace_file)])
    assert rc == 0


def test_trace_subcommand_bad_usage(tmp_path, capsys):
    assert main(["trace"]) == 2
    assert "--trace-file" in capsys.readouterr().err

    missing = tmp_path / "missing.json"
    assert main(["trace", str(missing)]) == 2
    assert "unreadable trace" in capsys.readouterr().err

    bad = tmp_path / "bad.json"
    bad.write_text("{not json")
    assert main(["trace", str(bad)]) == 2
    assert "malformed trace" in capsys.readouterr().err


def test_trace_validate_rejects_schema_violations(tmp_path, capsys):
    import json

    payload = {
        "version": 1,
        "meta": {},
        "counters": {"bad": -1},
        "gauges": {},
        "histograms": {},
        "spans": [],
    }
    bad = tmp_path / "invalid.json"
    bad.write_text(json.dumps(payload))
    rc = main(["trace", str(bad), "--validate"])
    assert rc == 1
    assert "schema violation" in capsys.readouterr().err


def test_reproduce_forwards_trace(tmp_path, monkeypatch, capsys):
    monkeypatch.setenv("REPRO_CACHE_DIR", str(tmp_path / "cache"))
    trace_file = tmp_path / "repro-trace.json"
    rc = main(
        ["reproduce", "--scale", "0.02", "--seed", "55", "--only", "table1",
         "--trace", str(trace_file)]
    )
    assert rc == 0
    assert trace_file.exists()
    from repro.obs.artifact import RunTrace

    trace = RunTrace.load(trace_file)
    assert trace.meta["command"] == "reproduce"
    assert "experiments" in trace.subsystems()
    capsys.readouterr()

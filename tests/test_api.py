"""The ReproSession facade and the deprecation surface behind it."""

import pytest

from repro import ReproSession
from repro.datasets import BuildConfig


@pytest.fixture()
def session(tmp_path, monkeypatch):
    monkeypatch.setenv("REPRO_CACHE_DIR", str(tmp_path / "cache"))
    return ReproSession(seed=31, scale=0.02, jobs=1, trace=True)


def test_facade_is_the_package_level_export():
    import repro
    from repro.api import ReproSession as direct

    assert repro.ReproSession is direct
    assert "ReproSession" in repro.__all__


def test_build_analyze_trace_round_trip(session, tmp_path):
    datasets = session.build(only=["UW3"])
    assert set(datasets) == {"UW3"}
    assert session.report is not None
    assert session.config == BuildConfig(seed=31, scale=0.02)

    result = session.analyze("UW3", "rtt", min_samples=2)
    assert len(result) > 0

    trace = session.trace()
    assert {"core", "datasets"} <= set(trace.subsystems())
    assert trace.meta["command"] == "session"
    trace_path, metrics_path = session.save_trace(tmp_path / "session.json")
    assert trace_path.exists() and metrics_path.name == "metrics.json"


def test_dataset_builds_on_demand(session):
    uw1 = session.dataset("UW1")
    assert uw1.meta.name == "UW1"
    # Second access is a plain dict hit, not another build.
    assert session.dataset("UW1") is uw1


def test_analyze_accepts_dataset_objects(session):
    uw3 = session.dataset("UW3")
    result = session.analyze(uw3, "rtt", min_samples=2)
    assert len(result) > 0


def test_untraced_session_rejects_trace_access(tmp_path, monkeypatch):
    monkeypatch.setenv("REPRO_CACHE_DIR", str(tmp_path / "cache"))
    session = ReproSession(seed=31, scale=0.02, trace=False)
    assert not session.tracing
    with pytest.raises(ValueError, match="trace=False"):
        session.trace()
    with pytest.raises(ValueError, match="trace=False"):
        session.save_trace(tmp_path / "t.json")


def test_reproduce_via_facade(tmp_path, monkeypatch, capsys):
    monkeypatch.setenv("REPRO_CACHE_DIR", str(tmp_path / "cache"))
    session = ReproSession(seed=31, scale=0.02, jobs=1, trace=True)
    artifacts = session.reproduce(only={"table1"})
    assert set(artifacts) == {"table1"}
    assert session.report is not None
    assert "experiments" in session.trace().subsystems()
    capsys.readouterr()  # swallow run_all's progress output


def test_repr_mentions_configuration(session):
    text = repr(session)
    assert "seed=31" in text and "trace=True" in text


def test_deprecated_get_datasets_warns(tmp_path, monkeypatch):
    monkeypatch.setenv("REPRO_CACHE_DIR", str(tmp_path / "cache"))
    from repro.experiments.runner import get_dataset, get_datasets

    cfg = BuildConfig(seed=31, scale=0.02)
    with pytest.warns(DeprecationWarning, match="removed in 2.0"):
        datasets = get_datasets(cfg, jobs=1)
    assert len(datasets) == 8
    with pytest.warns(DeprecationWarning, match="removed in 2.0"):
        uw3 = get_dataset("UW3", cfg, jobs=1)
    assert uw3.meta.name == "UW3"


def test_deprecated_names_not_reexported():
    import repro
    import repro.experiments as experiments

    with pytest.raises(AttributeError, match="ReproSession"):
        repro.build_all
    assert "get_datasets" not in experiments.__all__
    assert "get_dataset" not in experiments.__all__
    assert not hasattr(experiments, "get_datasets")
    assert not hasattr(experiments, "get_dataset")
    with pytest.raises(AttributeError):
        repro.no_such_symbol

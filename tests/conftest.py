"""Shared fixtures: small topologies and datasets built once per session."""

from __future__ import annotations

import numpy as np
import pytest

from repro.datasets import Dataset, DatasetMeta
from repro.measurement import Campaign, poisson_episodes, poisson_pairs
from repro.netsim import NetworkConditions, SECONDS_PER_DAY
from repro.routing import PathResolver
from repro.topology import TopologyConfig, generate_topology, place_hosts


@pytest.fixture(scope="session")
def topo1999():
    """A 1999-era topology with 12 NA hosts (25% ICMP rate limiters)."""
    topo = generate_topology(TopologyConfig.for_era("1999", seed=42))
    place_hosts(
        topo, 12, seed=7, north_america_only=True, rate_limit_fraction=0.25
    )
    return topo


@pytest.fixture(scope="session")
def topo1995():
    """A 1995-era topology with 10 worldwide hosts."""
    topo = generate_topology(TopologyConfig.for_era("1995", seed=43))
    place_hosts(topo, 10, seed=9, rate_limit_fraction=0.0)
    return topo


@pytest.fixture(scope="session")
def conditions(topo1999):
    return NetworkConditions(topo1999, seed=5)


@pytest.fixture(scope="session")
def resolver(topo1999):
    return PathResolver(topo1999)


@pytest.fixture(scope="session")
def rng():
    return np.random.default_rng(123)


def _meta(name: str, method: str = "traceroute") -> DatasetMeta:
    return DatasetMeta(
        name=name,
        method=method,
        year=1999,
        duration_days=2,
        location="North America",
    )


@pytest.fixture(scope="session")
def mini_dataset(topo1999, conditions, resolver) -> Dataset:
    """Two simulated days of Poisson traceroutes between 12 hosts."""
    hosts = topo1999.host_names()
    campaign = Campaign(topo1999, conditions, hosts, resolver=resolver, seed=11)
    requests = poisson_pairs(hosts, 2 * SECONDS_PER_DAY, 60.0, seed=11)
    records, stats = campaign.run_traceroutes(requests)
    return Dataset(
        meta=_meta("MINI"),
        hosts=hosts,
        traceroutes=records,
        path_info=campaign.path_info(),
        stats=stats,
    )


@pytest.fixture(scope="session")
def mini_transfers(topo1999, conditions, resolver) -> Dataset:
    """Two simulated days of TCP transfers between 12 hosts."""
    hosts = topo1999.host_names()
    campaign = Campaign(topo1999, conditions, hosts, resolver=resolver, seed=13)
    requests = poisson_pairs(hosts, 2 * SECONDS_PER_DAY, 120.0, seed=13)
    records, stats = campaign.run_transfers(requests)
    return Dataset(
        meta=_meta("MINI-BW", method="tcpanaly"),
        hosts=hosts,
        transfers=records,
        path_info=campaign.path_info(),
        stats=stats,
    )


@pytest.fixture(scope="session")
def episode_dataset(topo1999, conditions, resolver) -> Dataset:
    """One simulated day of all-pairs episodes between 8 hosts."""
    hosts = topo1999.host_names()[:8]
    campaign = Campaign(topo1999, conditions, hosts, resolver=resolver, seed=17)
    requests = poisson_episodes(hosts, SECONDS_PER_DAY, 2400.0, seed=17)
    records, stats = campaign.run_traceroutes(requests)
    return Dataset(
        meta=_meta("MINI-EP"),
        hosts=hosts,
        traceroutes=records,
        path_info=campaign.path_info(),
        stats=stats,
    )


@pytest.fixture(scope="session")
def suite():
    """All eight paper datasets at 12% scale (shared across test modules)."""
    from repro.datasets import BuildConfig, build_all

    return build_all(BuildConfig(seed=2024, scale=0.12))


@pytest.fixture(scope="session")
def min_samples():
    """min_samples appropriate for the reduced-scale suite."""
    return 4

"""Tracer determinism: nesting, ids, grafting, fingerprints."""

from repro.obs.tracer import SPAN_FIELDS, Tracer, span_fingerprint


class FakeClock:
    """Monotonic fake clock advancing 1s per read."""

    def __init__(self) -> None:
        self.t = 0.0

    def __call__(self) -> float:
        self.t += 1.0
        return self.t


def _sample_run(tracer: Tracer) -> None:
    with tracer.start("a") as sp:
        sp.set("seed", 1)
        with tracer.start("a.inner"):
            pass
        with tracer.start("a.inner"):
            pass
    with tracer.start("b"):
        pass


def test_ids_assigned_in_start_order():
    tracer = Tracer(FakeClock())
    _sample_run(tracer)
    spans = tracer.export()
    assert [d["id"] for d in spans] == [1, 2, 3, 4]
    assert [d["parent"] for d in spans] == [None, 1, 1, None]
    assert [d["name"] for d in spans] == ["a", "a.inner", "a.inner", "b"]
    assert all(tuple(d) == SPAN_FIELDS for d in spans)


def test_status_records_exception_type():
    tracer = Tracer(FakeClock())
    try:
        with tracer.start("boom"):
            raise KeyError("x")
    except KeyError:
        pass
    assert tracer.export()[0]["status"] == "error:KeyError"


def test_durations_monotonic_and_excluded_from_fingerprint():
    fast, slow = Tracer(FakeClock()), Tracer(FakeClock())
    _sample_run(fast)
    _sample_run(slow)
    # Perturb only the timing fields: the fingerprint must not change.
    spans_a, spans_b = fast.export(), slow.export()
    for d in spans_b:
        d["start_s"] += 100.0
        d["duration_s"] *= 7.0
        d["pid"] += 1
    assert span_fingerprint(spans_a) == span_fingerprint(spans_b)
    assert all(d["duration_s"] >= 0 for d in spans_a)


def test_fingerprint_sensitive_to_structure_and_attrs():
    base = Tracer(FakeClock())
    _sample_run(base)
    renamed = Tracer(FakeClock())
    with renamed.start("a") as sp:
        sp.set("seed", 2)  # different attr value
        with renamed.start("a.inner"):
            pass
        with renamed.start("a.inner"):
            pass
    with renamed.start("b"):
        pass
    assert span_fingerprint(base.export()) != span_fingerprint(renamed.export())


def test_identical_runs_fingerprint_identically():
    one, two = Tracer(FakeClock()), Tracer(FakeClock())
    _sample_run(one)
    _sample_run(two)
    assert span_fingerprint(one.export()) == span_fingerprint(two.export())


def test_graft_remaps_ids_and_reparents_roots():
    worker = Tracer(FakeClock())
    with worker.start("datasets.build") as sp:
        sp.set("group", "uw3")
        with worker.start("datasets.save"):
            pass
    blob = worker.export()

    coordinator = Tracer(FakeClock())
    with coordinator.start("datasets.provision"):
        coordinator.graft(blob)
    spans = coordinator.export()
    assert [d["name"] for d in spans] == [
        "datasets.provision", "datasets.build", "datasets.save"
    ]
    build, save = spans[1], spans[2]
    assert build["id"] == 2 and build["parent"] == 1
    assert save["id"] == 3 and save["parent"] == 2
    assert build["attrs"] == {"group": "uw3"}


def test_graft_order_is_deterministic():
    def worker_blob(group: str) -> list[dict]:
        t = Tracer(FakeClock())
        with t.start("datasets.build") as sp:
            sp.set("group", group)
        return t.export()

    def compose() -> str:
        t = Tracer(FakeClock())
        with t.start("datasets.provision"):
            for group in ("d2", "n2", "uw3"):
                t.graft(worker_blob(group))
        return span_fingerprint(t.export())

    assert compose() == compose()


def test_out_of_order_close_tolerated():
    tracer = Tracer(FakeClock())
    outer = tracer.start("outer")
    inner = tracer.start("inner")
    outer.__enter__()
    inner.__enter__()
    # Close the outer span while the inner is still open (a leak).
    outer.__exit__(None, None, None)
    assert tracer.current is None
    with tracer.start("next"):
        pass
    assert tracer.export()[-1]["parent"] is None

"""Runtime activation: no-op path, swap scoping, zero allocation."""

import tracemalloc

from repro.obs import runtime as obs
from repro.obs.metrics import Metrics
from repro.obs.tracer import Tracer


def test_disabled_by_default():
    assert not obs.enabled()
    obs.count("nothing")
    obs.gauge("nothing", 1.0)
    obs.observe("nothing", 1.0)
    obs.graft({"spans": [], "metrics": {}})


def test_noop_span_is_a_shared_singleton():
    assert not obs.enabled()
    a = obs.span("x")
    b = obs.span("y")
    assert a is b
    with a as sp:
        sp.set("ignored", 1)


def test_disabled_helpers_allocate_nothing():
    """The no-op path must not allocate (beyond tracemalloc's own frames)."""
    assert not obs.enabled()

    def hot_path() -> None:
        for _ in range(100):
            with obs.span("datasets.build") as sp:
                sp.set("group", "uw3")
            obs.count("datasets.builds")
            obs.observe("datasets.lock_wait_s", 0.0)

    hot_path()  # warm up (bytecode caches, method binding)
    tracemalloc.start()
    before = tracemalloc.take_snapshot()
    hot_path()
    after = tracemalloc.take_snapshot()
    tracemalloc.stop()
    here = __file__
    growth = sum(
        stat.size_diff
        for stat in after.compare_to(before, "filename")
        if stat.traceback[0].filename == here
    )
    assert growth <= 0, f"no-op observability allocated {growth} bytes"


def test_capture_enables_and_restores():
    with obs.capture() as cap:
        assert obs.enabled()
        with obs.span("unit.test") as sp:
            sp.set("k", "v")
        obs.count("unit.counter", 2)
    assert not obs.enabled()
    blob = cap.blob()
    assert [d["name"] for d in blob["spans"]] == ["unit.test"]
    assert blob["metrics"]["counters"] == {"unit.counter": 2}


def test_activate_swaps_and_restores_previous_capture():
    outer_tracer, outer_metrics = Tracer(), Metrics()
    inner_tracer, inner_metrics = Tracer(), Metrics()
    with obs.activate(outer_tracer, outer_metrics):
        with obs.span("outer.span"):
            pass
        with obs.activate(inner_tracer, inner_metrics):
            with obs.span("inner.span"):
                pass
        with obs.span("outer.again"):
            pass
    assert [s.name for s in outer_tracer] == ["outer.span", "outer.again"]
    assert [s.name for s in inner_tracer] == ["inner.span"]
    assert not obs.enabled()


def test_graft_into_active_capture():
    with obs.capture() as worker:
        with obs.span("datasets.build"):
            pass
        obs.count("datasets.builds")
    with obs.capture() as cap:
        with obs.span("datasets.provision"):
            obs.graft(worker.blob())
        obs.graft(None)  # tolerated
    spans = cap.tracer.export()
    assert [d["name"] for d in spans] == [
        "datasets.provision", "datasets.build"
    ]
    assert spans[1]["parent"] == spans[0]["id"]
    assert cap.metrics.counter("datasets.builds") == 1

"""Schema validation and checked-in-schema drift guards."""

import json
from pathlib import Path

from repro.obs import runtime as obs
from repro.obs.artifact import RunTrace
from repro.obs.schema import METRICS_SCHEMA, TRACE_SCHEMA, validate

ROOT = Path(__file__).resolve().parent.parent.parent


def _trace():
    with obs.capture() as cap:
        with obs.span("topology.generate") as sp:
            sp.set("seed", 7)
        obs.count("topology.generated")
        obs.gauge("workers", 2)
        obs.observe("datasets.lock_wait_s", 0.25)
    return RunTrace.from_capture(
        cap, {"command": "test", "seed": 7, "scale": 0.1, "jobs": None}
    )


def test_real_artifacts_validate():
    trace = _trace()
    assert validate(trace.payload(), TRACE_SCHEMA) == []
    assert validate(trace.metrics_payload(), METRICS_SCHEMA) == []


def test_validator_reports_paths():
    trace = _trace()
    payload = trace.payload()
    payload["counters"]["bad"] = -1
    payload["spans"][0]["id"] = "one"
    payload["extra"] = True
    errors = validate(payload, TRACE_SCHEMA)
    assert any("$.counters.bad" in e for e in errors)
    assert any("$.spans[0].id" in e for e in errors)
    assert any("unexpected key 'extra'" in e for e in errors)


def test_validator_type_subset():
    assert validate(1, {"type": "integer"}) == []
    assert validate(True, {"type": "integer"}) != []  # bool is not a number
    assert validate(None, {"type": ["integer", "null"]}) == []
    assert validate(0.5, {"type": "number", "minimum": 0}) == []
    assert validate(-0.5, {"type": "number", "minimum": 0}) != []
    assert validate("x", {"enum": ["x", "y"]}) == []
    assert validate("z", {"enum": ["x", "y"]}) != []
    assert validate(2, {"const": 1}) != []
    assert validate([1, "a"], {"type": "array", "items": {"type": "integer"}}) != []


def test_checked_in_schemas_match_embedded():
    """docs/schemas/*.schema.json must never drift from the code."""
    trace_file = ROOT / "docs" / "schemas" / "trace.schema.json"
    metrics_file = ROOT / "docs" / "schemas" / "metrics.schema.json"
    assert json.loads(trace_file.read_text()) == TRACE_SCHEMA
    assert json.loads(metrics_file.read_text()) == METRICS_SCHEMA

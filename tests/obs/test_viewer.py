"""Viewer golden output, driven by a deterministic fake clock."""

from repro.obs.artifact import RunTrace
from repro.obs.metrics import Metrics
from repro.obs.runtime import Capture
from repro.obs.tracer import Tracer
from repro.obs.viewer import render_trace


class FakeClock:
    """Monotonic fake clock advancing 1s per read."""

    def __init__(self) -> None:
        self.t = 0.0

    def __call__(self) -> float:
        self.t += 1.0
        return self.t


def _golden_capture() -> Capture:
    tracer, metrics = Tracer(FakeClock()), Metrics()
    with tracer.start("datasets.provision") as sp:
        sp.set("seed", 7)
        with tracer.start("datasets.build") as bp:
            bp.set("group", "uw3")
            bp.set("attempt", 0)
        try:
            with tracer.start("datasets.build") as bp:
                bp.set("group", "n2")
                bp.set("attempt", 0)
                raise RuntimeError("injected")
        except RuntimeError:
            pass
        with tracer.start("datasets.build") as bp:
            bp.set("group", "n2")
            bp.set("attempt", 1)
    metrics.count("datasets.builds", 3)
    metrics.count("faults.retries", 1)
    metrics.gauge("workers", 2)
    metrics.observe("datasets.lock_wait_s", 0.5)
    return Capture(tracer, metrics)


GOLDEN = """\
trace: command=suite seed=7
spans: 4 across 1 subsystem(s): datasets
top 2 slowest span(s):
      7.000s  datasets.provision            seed=7
      1.000s  datasets.build                attempt=0 group=uw3
build groups:
  n2          2.000s build across 2 attempt(s)  (1 failed attempt(s))
  uw3         1.000s build across 1 attempt(s)
counters:
  datasets.builds                  3
  faults.retries                   1
gauges:
  workers                          2
histograms:
  datasets.lock_wait_s             n=1 mean=0.500 min=0.500 max=0.500"""


def test_render_trace_golden():
    trace = RunTrace.from_capture(
        _golden_capture(), {"command": "suite", "seed": 7}
    )
    assert render_trace(trace, top=2) == GOLDEN


def test_render_trace_empty():
    trace = RunTrace(meta={}, spans=[], metrics={})
    out = render_trace(trace)
    assert out.startswith("trace:")
    assert "spans: 0 across 0 subsystem(s):" in out


def test_render_trace_top_bounds():
    trace = RunTrace.from_capture(
        _golden_capture(), {"command": "suite", "seed": 7}
    )
    out = render_trace(trace, top=100)
    assert "top 4 slowest span(s):" in out

"""End-to-end observability: traced runs stay byte-identical, spans cover
every instrumented subsystem, and fault retries leave a span trail."""

import hashlib

import pytest

from repro.datasets import BuildConfig
from repro.experiments.runner import provision_datasets
from repro.obs import runtime as obs
from repro.obs.artifact import RunTrace


@pytest.fixture()
def tiny_cfg():
    return BuildConfig(seed=31, scale=0.02)


def _suite_dir(root, cfg):
    return root / f"seed{cfg.seed}-scale{cfg.scale:g}"


def _hashes(suite):
    return {
        p.name: hashlib.sha256(p.read_bytes()).hexdigest()
        for p in suite.glob("*.jsonl")
    }


META = {"command": "test", "seed": 31, "scale": 0.02, "jobs": 1}


def test_traced_run_is_byte_identical_to_untraced(
    tmp_path, monkeypatch, tiny_cfg
):
    """The acceptance guarantee: tracing must not perturb results."""
    from repro.experiments.tables import table1

    monkeypatch.setenv("REPRO_CACHE_DIR", str(tmp_path / "plain"))
    datasets = provision_datasets(tiny_cfg, jobs=1)
    plain = _hashes(_suite_dir(tmp_path / "plain", tiny_cfg))
    plain_table = table1(datasets).text
    assert len(plain) == 8

    monkeypatch.setenv("REPRO_CACHE_DIR", str(tmp_path / "traced"))
    with obs.capture() as cap:
        datasets = provision_datasets(tiny_cfg, jobs=1)
        traced_table = table1(datasets).text
    traced = _hashes(_suite_dir(tmp_path / "traced", tiny_cfg))
    assert traced == plain
    assert traced_table == plain_table
    assert len(cap.tracer) > 0


def test_parallel_trace_fingerprints_serial_trace(
    tmp_path, monkeypatch, tiny_cfg
):
    """Worker-blob grafting keeps the span tree shape jobs-independent."""
    monkeypatch.setenv("REPRO_CACHE_DIR", str(tmp_path / "serial"))
    with obs.capture() as serial:
        provision_datasets(tiny_cfg, jobs=1)

    monkeypatch.setenv("REPRO_CACHE_DIR", str(tmp_path / "parallel"))
    with obs.capture() as parallel:
        provision_datasets(tiny_cfg, jobs=2)

    a = RunTrace.from_capture(serial, META)
    b = RunTrace.from_capture(parallel, META)
    assert a.fingerprint() == b.fingerprint()
    # The grafted tree keeps worker spans under the provision span.
    provision_id = b.spans_named("datasets.provision")[0]["id"]
    parents = {d["id"]: d["parent"] for d in b.spans}
    for build in b.spans_named("datasets.build"):
        walk = build["id"]
        while parents[walk] is not None:
            walk = parents[walk]
        assert walk == provision_id or build["parent"] == provision_id


def test_trace_covers_all_instrumented_subsystems(
    tmp_path, monkeypatch, tiny_cfg
):
    """One composed run touches >= 6 namespaces (acceptance criterion)."""
    monkeypatch.setenv("REPRO_CACHE_DIR", str(tmp_path / "cache"))
    from repro.core import Metric, analyze
    from repro.netsim import NetworkConditions, SECONDS_PER_DAY
    from repro.overlay import OverlayNetwork
    from repro.topology import TopologyConfig, generate_topology, place_hosts

    with obs.capture() as cap:
        datasets = provision_datasets(tiny_cfg, jobs=1)
        analyze(datasets["UW3"], Metric.RTT, min_samples=2)
        topo = generate_topology(TopologyConfig.for_era("1999", seed=3))
        place_hosts(topo, 6, seed=4, north_america_only=True)
        overlay = OverlayNetwork(
            topo, NetworkConditions(topo, seed=5), topo.host_names(), seed=6
        )
        overlay.evaluate(
            t0=1.0 * SECONDS_PER_DAY,
            duration_s=SECONDS_PER_DAY / 24,
            n_flows=10,
        )
        from repro.experiments.tables import table1

        with obs.span("experiments.artifact") as sp:
            sp.set("name", "table1")
            table1(datasets)

    trace = RunTrace.from_capture(cap, META)
    covered = set(trace.subsystems())
    assert {
        "topology", "routing", "datasets", "core", "overlay", "experiments"
    } <= covered
    counters = trace.metrics.get("counters", {})
    assert counters.get("datasets.builds", 0) > 0
    assert counters.get("datasets.cache.misses", 0) > 0


def test_fault_plan_retries_leave_spans(tmp_path, monkeypatch, tiny_cfg):
    monkeypatch.setenv("REPRO_CACHE_DIR", str(tmp_path / "cache"))
    with obs.capture() as cap:
        provision_datasets(tiny_cfg, jobs=1, fault_plan="fail:uw3:times=1")
    trace = RunTrace.from_capture(cap, META)
    retries = trace.spans_named("faults.retry")
    assert len(retries) == 1
    assert retries[0]["attrs"]["label"] == "uw3"
    assert trace.metrics["counters"]["faults.retries"] == 1
    assert trace.metrics["counters"]["faults.backoffs"] >= 1
    assert trace.spans_named("faults.backoff")
    # Failed attempts raise out of the worker, so only the retry that
    # succeeded ships a build span back; the faults.retry span above is
    # the record of the failure.
    builds = [
        d for d in trace.spans_named("datasets.build")
        if d["attrs"]["group"] == "uw3"
    ]
    assert [d["attrs"]["attempt"] for d in builds] == [1]
    assert builds[0]["status"] == "ok"

"""Metrics registry: instruments, sorted exports, cross-process merge."""

from repro.obs.metrics import Metrics


def test_counters_accumulate():
    m = Metrics()
    m.count("hits")
    m.count("hits", 2)
    assert m.counter("hits") == 3
    assert m.counter("never") == 0


def test_gauge_last_write_wins():
    m = Metrics()
    m.gauge("workers", 4)
    m.gauge("workers", 2)
    assert m.export()["gauges"] == {"workers": 2}


def test_histogram_summary():
    m = Metrics()
    for v in (1.0, 3.0, 2.0):
        m.observe("wait_s", v)
    h = m.export()["histograms"]["wait_s"]
    assert h == {"count": 3, "total": 6.0, "min": 1.0, "max": 3.0}


def test_export_keys_sorted():
    m = Metrics()
    for name in ("zeta", "alpha", "mid"):
        m.count(name)
        m.gauge(name, 1.0)
        m.observe(name, 1.0)
    out = m.export()
    for section in ("counters", "gauges", "histograms"):
        assert list(out[section]) == ["alpha", "mid", "zeta"]


def test_merge_combines_worker_blobs():
    worker = Metrics()
    worker.count("builds", 2)
    worker.gauge("workers", 8)
    worker.observe("wait_s", 5.0)

    main = Metrics()
    main.count("builds", 1)
    main.gauge("workers", 1)
    main.observe("wait_s", 1.0)
    main.merge(worker.export())

    out = main.export()
    assert out["counters"]["builds"] == 3
    assert out["gauges"]["workers"] == 8
    assert out["histograms"]["wait_s"] == {
        "count": 2, "total": 6.0, "min": 1.0, "max": 5.0
    }


def test_merge_into_empty_registry():
    worker = Metrics()
    worker.observe("wait_s", 2.0)
    main = Metrics()
    main.merge(worker.export())
    assert main.export()["histograms"]["wait_s"]["count"] == 1

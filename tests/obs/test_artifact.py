"""RunTrace artifact: field order, round-trip, fingerprint scope."""

import json

import pytest

from repro.obs import runtime as obs
from repro.obs.artifact import RunTrace, TraceError, write_run_trace


def _capture_blob():
    with obs.capture() as cap:
        with obs.span("topology.generate") as sp:
            sp.set("seed", 7)
            with obs.span("routing.igp.table"):
                pass
        obs.count("topology.generated")
        obs.observe("datasets.lock_wait_s", 0.5)
        obs.gauge("workers", 2)
    return cap


META = {"command": "test", "seed": 7, "scale": 0.1, "jobs": None}


def test_payload_field_order_is_fixed():
    trace = RunTrace.from_capture(_capture_blob(), META)
    assert list(trace.payload()) == [
        "version", "meta", "counters", "gauges", "histograms", "spans"
    ]
    assert list(trace.metrics_payload()) == [
        "version", "meta", "counters", "gauges", "histograms"
    ]
    assert list(trace.payload()["meta"]) == sorted(META)


def test_no_wall_clock_fields_in_payload():
    payload = RunTrace.from_capture(_capture_blob(), META).payload()
    text = json.dumps(payload)
    for banned in ("wall", "time.time", "timestamp", "date"):
        assert banned not in text


def test_write_and_load_round_trip(tmp_path):
    cap = _capture_blob()
    trace_path, metrics_path = write_run_trace(cap, META, tmp_path / "t.json")
    assert metrics_path.name == "metrics.json"
    loaded = RunTrace.load(trace_path)
    original = RunTrace.from_capture(cap, META)
    assert loaded.payload() == original.payload()
    assert loaded.fingerprint() == original.fingerprint()
    sidecar = json.loads(metrics_path.read_text())
    assert sidecar == original.metrics_payload()


def test_load_rejects_malformed_files(tmp_path):
    bad = tmp_path / "bad.json"
    bad.write_text("{not json")
    with pytest.raises(TraceError):
        RunTrace.load(bad)
    bad.write_text(json.dumps({"version": 99}))
    with pytest.raises(TraceError):
        RunTrace.load(bad)
    bad.write_text(json.dumps({"version": 1, "spans": "nope"}))
    with pytest.raises(TraceError):
        RunTrace.load(bad)
    with pytest.raises(OSError):
        RunTrace.load(tmp_path / "missing.json")


def test_fingerprint_ignores_timing_but_not_counters():
    a = RunTrace.from_capture(_capture_blob(), META)
    b = RunTrace.from_capture(_capture_blob(), META)
    for d in b.spans:
        d["duration_s"] += 9.0
        d["start_s"] += 9.0
        d["pid"] += 1
    b.metrics["gauges"]["workers"] = 64
    b.metrics["histograms"]["datasets.lock_wait_s"]["max"] = 99.0
    assert a.fingerprint() == b.fingerprint()
    b.metrics["counters"]["topology.generated"] += 1
    assert a.fingerprint() != b.fingerprint()


def test_derived_facts():
    trace = RunTrace.from_capture(_capture_blob(), META)
    assert trace.subsystems() == ["routing", "topology"]
    assert [d["name"] for d in trace.spans_named("topology.generate")] == [
        "topology.generate"
    ]
    top = trace.top_spans(1)
    assert len(top) == 1
    assert top[0]["duration_s"] == max(d["duration_s"] for d in trace.spans)

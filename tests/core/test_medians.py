"""Tests for the mean-vs-median robustness analysis (Figure 6)."""

import numpy as np
import pytest

from repro.core.medians import (
    MedianAnalysisError,
    compare_mean_vs_median,
    max_cdf_discrepancy,
    mean_median_cdfs,
)


@pytest.fixture(scope="module")
def comparisons(mini_dataset):
    return compare_mean_vs_median(mini_dataset, min_samples=5)


def test_comparison_structure(comparisons):
    assert comparisons
    for comp in comparisons:
        assert comp.src != comp.dst
        assert np.isfinite(comp.mean_improvement)
        assert np.isfinite(comp.median_improvement)


def test_cdfs(comparisons):
    means, medians = mean_median_cdfs(comparisons)
    assert means.label == "means"
    assert medians.label == "medians"
    assert means.x.size == medians.x.size == len(comparisons)


def test_mean_median_difference_is_negligible(comparisons):
    """The paper's §6.1 conclusion: 'the difference is negligible'."""
    gap = max_cdf_discrepancy(comparisons)
    assert gap < 0.35
    means, medians = mean_median_cdfs(comparisons)
    # The improved-fraction is nearly the same under either statistic.
    assert abs(
        means.fraction_above(0.0) - medians.fraction_above(0.0)
    ) < 0.25


def test_empty_comparisons_rejected():
    with pytest.raises(MedianAnalysisError):
        mean_median_cdfs([])
    with pytest.raises(MedianAnalysisError):
        max_cdf_discrepancy([])


def test_discrepancy_of_identical_lists():
    from repro.core.medians import MeanMedianComparison

    comps = [
        MeanMedianComparison(src="a", dst="b", mean_improvement=v, median_improvement=v)
        for v in (-5.0, 0.0, 5.0)
    ]
    assert max_cdf_discrepancy(comps) == 0.0

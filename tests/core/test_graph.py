"""Tests for measurement-graph construction."""

import numpy as np
import pytest

from repro.core.graph import (
    EdgeData,
    GraphError,
    Metric,
    MetricGraph,
    PROPAGATION_PERCENTILE,
    build_graph,
)
from repro.core.stats import SampleStats


def _edge(value=10.0, n=5):
    return EdgeData(value=value, stats=SampleStats(n=n, mean=value, var=1.0))


def test_metric_orientation():
    assert Metric.BANDWIDTH.higher_is_better
    assert not Metric.RTT.higher_is_better
    assert not Metric.LOSS.higher_is_better


def test_graph_construction_and_queries():
    g = MetricGraph(Metric.RTT, ["a", "b", "c"])
    g.add_edge(("a", "b"), _edge(10.0))
    g.add_edge(("b", "a"), _edge(12.0))
    assert len(g) == 2
    assert g.has_edge(("a", "b"))
    assert not g.has_edge(("a", "c"))
    assert g.edge(("a", "b")).value == 10.0
    with pytest.raises(GraphError):
        g.edge(("a", "c"))


def test_graph_rejects_invalid_edges():
    g = MetricGraph(Metric.RTT, ["a", "b"])
    with pytest.raises(GraphError):
        g.add_edge(("a", "a"), _edge())
    with pytest.raises(GraphError):
        g.add_edge(("a", "zz"), _edge())
    g.add_edge(("a", "b"), _edge())
    with pytest.raises(GraphError):
        g.add_edge(("a", "b"), _edge())


def test_duplicate_hosts_rejected():
    with pytest.raises(GraphError):
        MetricGraph(Metric.RTT, ["a", "a"])


def test_without_hosts():
    g = MetricGraph(Metric.RTT, ["a", "b", "c"])
    g.add_edge(("a", "b"), _edge())
    g.add_edge(("a", "c"), _edge())
    sub = g.without_hosts({"b"})
    assert sub.hosts == ["a", "c"]
    assert sub.has_edge(("a", "c"))
    assert not sub.has_edge(("a", "b"))
    assert g.has_edge(("a", "b"))  # original intact


def test_weight_matrix():
    g = MetricGraph(Metric.RTT, ["a", "b"])
    g.add_edge(("a", "b"), _edge(42.0))
    mat = g.weight_matrix()
    assert mat[0, 1] == 42.0
    assert np.isinf(mat[1, 0])
    assert np.isinf(mat[0, 0])
    doubled = g.weight_matrix(lambda v: v * 2)
    assert doubled[0, 1] == 84.0


def test_build_rtt_graph(mini_dataset):
    g = build_graph(mini_dataset, Metric.RTT, min_samples=5)
    assert g.metric is Metric.RTT
    assert len(g) > 0
    for pair, data in g.edges.items():
        assert data.value == pytest.approx(float(mini_dataset.rtt_samples(pair).mean()))
        assert data.stats.n == mini_dataset.rtt_samples(pair).size
        assert data.samples is None


def test_build_graph_keep_samples(mini_dataset):
    g = build_graph(mini_dataset, Metric.RTT, min_samples=5, keep_samples=True)
    data = next(iter(g.edges.values()))
    assert data.samples is not None
    assert data.samples.size == data.stats.n


def test_build_loss_graph(mini_dataset):
    g = build_graph(mini_dataset, Metric.LOSS, min_samples=5)
    for pair, data in g.edges.items():
        assert 0.0 <= data.value <= 1.0
        assert data.value == pytest.approx(float(mini_dataset.loss_samples(pair).mean()))


def test_build_prop_graph(mini_dataset):
    rtt = build_graph(mini_dataset, Metric.RTT, min_samples=5)
    prop = build_graph(mini_dataset, Metric.PROP_DELAY, min_samples=5)
    for pair, data in prop.edges.items():
        samples = mini_dataset.rtt_samples(pair)
        assert data.value == pytest.approx(
            float(np.percentile(samples, PROPAGATION_PERCENTILE))
        )
        # Propagation estimate never exceeds the mean RTT.
        assert data.value <= rtt.edge(pair).value


def test_min_samples_filter(mini_dataset):
    loose = build_graph(mini_dataset, Metric.RTT, min_samples=1)
    strict = build_graph(mini_dataset, Metric.RTT, min_samples=10**6)
    assert len(strict) == 0
    assert len(loose) >= len(strict)


def test_bandwidth_graph_requires_transfers(mini_dataset, mini_transfers):
    with pytest.raises(GraphError):
        build_graph(mini_dataset, Metric.BANDWIDTH)
    g = build_graph(mini_transfers, Metric.BANDWIDTH, min_samples=1)
    for data in g.edges.values():
        assert data.value > 0
        assert "rtt_mean" in data.aux and "loss_mean" in data.aux


def test_host_index(mini_dataset):
    g = build_graph(mini_dataset, Metric.RTT, min_samples=1)
    for i, host in enumerate(g.hosts):
        assert g.host_index(host) == i
    with pytest.raises(GraphError):
        g.host_index("missing")

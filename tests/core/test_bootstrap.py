"""Tests for bootstrap validation of the analytic confidence intervals."""

import numpy as np
import pytest

from repro.core.analysis import analyze
from repro.core.bootstrap import (
    BootstrapError,
    BootstrapInterval,
    bootstrap_improvements,
    compare_with_analytic,
)
from repro.core.graph import Metric


@pytest.fixture(scope="module")
def rtt_result(mini_dataset):
    return analyze(mini_dataset, Metric.RTT, min_samples=5)


@pytest.fixture(scope="module")
def intervals(mini_dataset, rtt_result):
    return bootstrap_improvements(
        mini_dataset, rtt_result, n_resamples=200, seed=3, max_pairs=40
    )


def test_validation():
    interval = BootstrapInterval(src="a", dst="b", point=1.0, lo=0.5, hi=2.0)
    assert interval.contains(1.0)
    assert not interval.contains(3.0)


def test_parameter_validation(mini_dataset, rtt_result):
    with pytest.raises(BootstrapError):
        bootstrap_improvements(mini_dataset, rtt_result, n_resamples=5)
    with pytest.raises(BootstrapError):
        bootstrap_improvements(mini_dataset, rtt_result, confidence=1.5)
    prop = analyze(mini_dataset, Metric.PROP_DELAY, min_samples=5)
    with pytest.raises(BootstrapError):
        bootstrap_improvements(mini_dataset, prop)


def test_interval_structure(intervals):
    assert intervals
    for interval in intervals:
        assert interval.lo <= interval.hi
        assert np.isfinite(interval.point)


def test_intervals_mostly_cover_point_estimate(intervals):
    coverage = np.mean([i.contains(i.point) for i in intervals])
    assert coverage > 0.9


def test_deterministic(mini_dataset, rtt_result):
    a = bootstrap_improvements(
        mini_dataset, rtt_result, n_resamples=50, seed=9, max_pairs=10
    )
    b = bootstrap_improvements(
        mini_dataset, rtt_result, n_resamples=50, seed=9, max_pairs=10
    )
    assert a == b


def test_agreement_with_analytic(mini_dataset, rtt_result, intervals):
    """The paper's analytic CIs and the bootstrap must broadly agree —
    this is the empirical justification for using the cheap form."""
    report = compare_with_analytic(rtt_result, intervals)
    assert report.n > 20
    assert report.sign_agreement > 0.7
    assert report.point_coverage > 0.9
    # Widths agree within a factor of ~2 either way.
    assert 0.4 < report.median_width_ratio < 2.5


def test_loss_bootstrap(mini_dataset):
    result = analyze(mini_dataset, Metric.LOSS, min_samples=5)
    intervals = bootstrap_improvements(
        mini_dataset, result, n_resamples=100, seed=5, max_pairs=20
    )
    assert intervals
    for interval in intervals:
        # Composed loss differences live in [-1, 1].
        assert -1.0 <= interval.lo <= interval.hi <= 1.0


def test_compare_requires_pairs(rtt_result):
    with pytest.raises(BootstrapError):
        compare_with_analytic(rtt_result, [])

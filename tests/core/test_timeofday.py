"""Tests for the time-of-day robustness analysis."""

import pytest

from repro.core.graph import Metric
from repro.core.timeofday import (
    analyze_by_time_of_day,
    paper_time_bins,
    peak_vs_offpeak_gap,
)
from repro.netsim.clock import SECONDS_PER_DAY, SECONDS_PER_HOUR


def test_paper_bins_cover_every_instant():
    bins = paper_time_bins()
    assert [b.label for b in bins] == [
        "weekend", "0000-0600", "0600-1200", "1200-1800", "1800-2400",
    ]
    # Every timestamp belongs to exactly one bin.
    for day in range(7):
        for hour in range(0, 24, 3):
            t = day * SECONDS_PER_DAY + hour * SECONDS_PER_HOUR + 1.0
            matches = [b.label for b in bins if b.predicate(t)]
            assert len(matches) == 1, f"t={t} in {matches}"


def test_bins_are_pst():
    bins = {b.label: b for b in paper_time_bins()}
    # Monday 19:00 UTC = Monday 11:00 PST -> the 0600-1200 bin.
    t = 19 * SECONDS_PER_HOUR
    assert bins["0600-1200"].predicate(t)
    # Saturday 10:00 UTC = Saturday 02:00 PST -> weekend.
    t = 5 * SECONDS_PER_DAY + 10 * SECONDS_PER_HOUR
    assert bins["weekend"].predicate(t)


def test_analysis_per_bin(mini_dataset):
    results = analyze_by_time_of_day(mini_dataset, Metric.RTT, min_samples=3)
    assert set(results) == {b.label for b in paper_time_bins()}
    total = sum(len(r) for r in results.values())
    assert total > 0
    for label, result in results.items():
        assert f"[{label}]" in result.dataset_name


def test_effect_occurs_in_every_populated_bin(mini_dataset):
    """The paper: 'the overall effect occurs regardless of the time of
    day' — every bin with data shows some improved pairs."""
    results = analyze_by_time_of_day(mini_dataset, Metric.RTT, min_samples=3)
    for label, result in results.items():
        if len(result) >= 10:
            assert result.fraction_improved() > 0.0, label


def test_peak_vs_offpeak_gap(mini_dataset):
    results = analyze_by_time_of_day(mini_dataset, Metric.RTT, min_samples=3)
    gap = peak_vs_offpeak_gap(results)
    assert -1.0 <= gap <= 1.0
    with pytest.raises(KeyError):
        peak_vs_offpeak_gap(results, peak="nonsense")


def test_custom_bins(mini_dataset):
    from repro.core.timeofday import TimeBin

    bins = [TimeBin("all", lambda t: True)]
    results = analyze_by_time_of_day(mini_dataset, Metric.RTT, min_samples=3, bins=bins)
    assert set(results) == {"all"}

"""Tests for the hop-depth ablation machinery."""

import numpy as np
import pytest

from repro.core.altpath import AlternatePathFinder, best_one_hop_alternates
from repro.core.graph import Metric, build_graph
from repro.core.hopdepth import HopDepthError, depth_sweep, k_hop_alternate_values


@pytest.fixture(scope="module")
def rtt_graph(mini_dataset):
    return build_graph(mini_dataset, Metric.RTT, min_samples=5)


def test_validation(rtt_graph):
    with pytest.raises(HopDepthError):
        k_hop_alternate_values(rtt_graph, 0)
    with pytest.raises(HopDepthError):
        depth_sweep(rtt_graph, depths=())


def test_k1_matches_one_hop_search(rtt_graph):
    """k=1 means a single edge — but a single-edge alternate IS the
    (excluded) direct edge, so k=1 yields nothing; k=2 matches the
    dedicated one-hop (one intermediate) search."""
    k2 = k_hop_alternate_values(rtt_graph, 2)
    one_hop = best_one_hop_alternates(rtt_graph)
    assert set(k2) >= set(one_hop)
    for pair, alt in one_hop.items():
        assert k2[pair] == pytest.approx(alt.value, rel=1e-9)


def test_k1_only_finds_parallel_edges(rtt_graph):
    """With the direct edge excluded and one edge allowed, no alternate
    exists (the graph has no parallel edges)."""
    k1 = k_hop_alternate_values(rtt_graph, 1)
    assert k1 == {}


def test_deep_search_converges_to_dijkstra(rtt_graph):
    """For k >= V-1 the k-hop optimum equals the unrestricted search."""
    n = len(rtt_graph.hosts)
    deep = k_hop_alternate_values(rtt_graph, n)
    full = AlternatePathFinder(rtt_graph).best_all()
    for pair, alt in full.items():
        assert deep[pair] == pytest.approx(alt.value, rel=1e-9)


def test_monotone_in_depth(rtt_graph):
    """More hops can only help."""
    k2 = k_hop_alternate_values(rtt_graph, 2)
    k3 = k_hop_alternate_values(rtt_graph, 3)
    k4 = k_hop_alternate_values(rtt_graph, 4)
    for pair in k2:
        assert k3[pair] <= k2[pair] + 1e-9
        assert k4[pair] <= k3[pair] + 1e-9


def test_depth_sweep_rows(rtt_graph):
    rows = depth_sweep(rtt_graph, depths=(2, 3, 4))
    assert [r.max_hops for r in rows] == [2, 3, 4]
    # Fraction improved is nondecreasing with depth.
    fractions = [r.fraction_improved for r in rows]
    assert all(a <= b + 1e-12 for a, b in zip(fractions, fractions[1:]))
    assert all(r.n_pairs > 0 for r in rows)


def test_loss_metric_depth(mini_dataset):
    g = build_graph(mini_dataset, Metric.LOSS, min_samples=5)
    values = k_hop_alternate_values(g, 3)
    assert values
    for v in values.values():
        assert 0.0 <= v <= 1.0


def test_random_graphs_match_bruteforce():
    """On random complete digraphs, the DP equals brute-force enumeration
    of simple paths with bounded edge count."""
    import itertools

    import numpy as np

    from repro.core.graph import EdgeData, MetricGraph
    from repro.core.stats import SampleStats

    rng = np.random.default_rng(17)
    hosts = ["a", "b", "c", "d", "e"]
    for _ in range(10):
        g = MetricGraph(Metric.RTT, hosts)
        weights = {}
        for x in hosts:
            for y in hosts:
                if x != y:
                    w = float(rng.uniform(1, 100))
                    weights[(x, y)] = w
                    g.add_edge(
                        (x, y),
                        EdgeData(value=w, stats=SampleStats(n=3, mean=w, var=0.1)),
                    )
        for k in (2, 3):
            dp = k_hop_alternate_values(g, k)
            for src, dst in [("a", "b"), ("c", "e"), ("d", "a")]:
                best = np.inf
                others = [h for h in hosts if h not in (src, dst)]
                for r in range(1, k):  # r intermediates -> r+1 edges <= k
                    for mids in itertools.permutations(others, r):
                        nodes = [src, *mids, dst]
                        cost = sum(
                            weights[(x, y)] for x, y in zip(nodes, nodes[1:])
                        )
                        best = min(best, cost)
                assert dp[(src, dst)] == pytest.approx(best)

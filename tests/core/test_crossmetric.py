"""Tests for cross-metric alternate evaluation."""

import pytest

from repro.core.crossmetric import (
    CrossMetricError,
    cross_metric_analysis,
    summarize_cross_metric,
)
from repro.core.graph import Metric


@pytest.fixture(scope="module")
def rtt_judged_by_loss(mini_dataset):
    return cross_metric_analysis(
        mini_dataset, Metric.RTT, Metric.LOSS, min_samples=5
    )


def test_validation(mini_dataset):
    with pytest.raises(CrossMetricError):
        cross_metric_analysis(mini_dataset, Metric.RTT, Metric.RTT)
    with pytest.raises(CrossMetricError):
        cross_metric_analysis(mini_dataset, Metric.BANDWIDTH, Metric.RTT)
    with pytest.raises(CrossMetricError):
        summarize_cross_metric([])


def test_points_structure(rtt_judged_by_loss):
    assert rtt_judged_by_loss
    for p in rtt_judged_by_loss:
        assert p.selected_by is Metric.RTT
        assert p.src != p.dst
        # Loss improvements live in [-1, 1].
        assert -1.0 <= p.secondary_improvement <= 1.0


def test_primary_matches_selection_analysis(mini_dataset, rtt_judged_by_loss):
    from repro.core.analysis import analyze

    selection = analyze(mini_dataset, Metric.RTT, min_samples=5)
    by_pair = {(c.src, c.dst): c.improvement for c in selection.comparisons}
    for p in rtt_judged_by_loss:
        assert p.primary_improvement == pytest.approx(by_pair[(p.src, p.dst)])


def test_summary_consistency(rtt_judged_by_loss):
    summary = summarize_cross_metric(rtt_judged_by_loss)
    assert summary.n == len(rtt_judged_by_loss)
    assert 0.0 <= summary.both_improved <= min(
        summary.primary_improved, summary.secondary_improved
    ) + 1e-12
    assert 0.0 <= summary.secondary_improved_given_primary <= 1.0


def test_single_metric_selection_does_not_serve_the_other(rtt_judged_by_loss):
    """The cross-metric finding (and why the paper optimizes each metric
    separately): the RTT-best alternate improves loss for only a minority
    of pairs — composing two legs multiplies loss even when it shortens
    latency."""
    summary = summarize_cross_metric(rtt_judged_by_loss)
    assert summary.primary_improved > 0.2
    assert summary.secondary_improved < summary.primary_improved
    assert summary.both_improved <= summary.secondary_improved + 1e-12


def test_prop_selected_judged_by_rtt(mini_dataset):
    points = cross_metric_analysis(
        mini_dataset, Metric.PROP_DELAY, Metric.RTT, min_samples=5
    )
    assert points
    summary = summarize_cross_metric(points)
    # Propagation-optimal alternates usually carry their RTT advantage.
    assert summary.secondary_improved > 0.15

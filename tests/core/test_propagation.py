"""Tests for the congestion-vs-propagation decomposition (Figures 15/16)."""

import pytest

from repro.core.analysis import analyze
from repro.core.graph import Metric
from repro.core.propagation import (
    DelayDecomposition,
    DelayGroup,
    analyze_propagation,
    decompose_improvements,
    group_counts,
    prop_improvement_cdf,
    propagation_cdfs,
    propagation_share,
)


def _point(total, prop):
    return DelayDecomposition(src="a", dst="b", total_improvement=total, prop_improvement=prop)


def test_six_group_classification():
    assert _point(-10.0, -5.0).group is DelayGroup.G1   # default wins both
    assert _point(-10.0, -20.0).group is DelayGroup.G2  # prop worse than total
    assert _point(-10.0, 5.0).group is DelayGroup.G3    # default wins on queue only
    assert _point(10.0, 5.0).group is DelayGroup.G4     # alt wins both
    assert _point(10.0, 20.0).group is DelayGroup.G5    # prop gain exceeds total
    assert _point(10.0, -5.0).group is DelayGroup.G6    # out of its way


def test_queueing_improvement_is_residual():
    p = _point(10.0, 4.0)
    assert p.queueing_improvement == pytest.approx(6.0)


def test_propagation_analysis(mini_dataset):
    result = analyze_propagation(mini_dataset, min_samples=5)
    assert result.metric is Metric.PROP_DELAY
    assert len(result) > 0


def test_propagation_cdfs_labels(mini_dataset):
    prop, rtt = propagation_cdfs(mini_dataset, min_samples=5)
    assert prop.label == "propagation delay"
    assert rtt.label == "mean round-trip"


def test_propagation_magnitude_smaller_than_rtt(mini_dataset):
    """'The magnitude of the differences is cut substantially when only
    propagation delay is considered.'"""
    prop, rtt = propagation_cdfs(mini_dataset, min_samples=5)
    spread_prop = prop.value_at_fraction(0.9) - prop.value_at_fraction(0.1)
    spread_rtt = rtt.value_at_fraction(0.9) - rtt.value_at_fraction(0.1)
    assert spread_prop < spread_rtt


def test_decomposition_points(mini_dataset):
    points = decompose_improvements(mini_dataset, min_samples=5)
    assert points
    rtt_result = analyze(mini_dataset, Metric.RTT, min_samples=5)
    by_pair = {(c.src, c.dst): c for c in rtt_result.comparisons}
    for p in points:
        comp = by_pair[(p.src, p.dst)]
        assert p.total_improvement == pytest.approx(comp.improvement)
        # Decomposition is exact: total = propagation + queuing.
        assert p.total_improvement == pytest.approx(
            p.prop_improvement + p.queueing_improvement
        )


def test_group_counts_complete(mini_dataset):
    points = decompose_improvements(mini_dataset, min_samples=5)
    counts = group_counts(points)
    assert sum(counts.values()) == len(points)
    assert set(counts) == set(DelayGroup)


def test_group3_rare_group6_present(mini_dataset):
    """The paper: 'there are very few paths in group 3 ... while group 6
    is much more populated.'"""
    points = decompose_improvements(mini_dataset, min_samples=5)
    counts = group_counts(points)
    assert counts[DelayGroup.G6] >= counts[DelayGroup.G3]


def test_propagation_share_bounds(mini_dataset):
    points = decompose_improvements(mini_dataset, min_samples=5)
    share = propagation_share(points)
    assert 0.0 <= share <= 1.0
    assert propagation_share([]) == 0.0


def test_prop_improvement_cdf(mini_dataset):
    points = decompose_improvements(mini_dataset, min_samples=5)
    cdf = prop_improvement_cdf(points)
    assert cdf.x.size == len(points)

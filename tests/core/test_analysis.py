"""Tests for the central analysis pipeline."""

import numpy as np
import pytest

from repro.core.analysis import (
    AnalysisError,
    PairComparison,
    analyze,
    analyze_bandwidth,
    analyze_graph,
)
from repro.core.bandwidth import LossComposition
from repro.core.graph import Metric, build_graph
from repro.core.stats import Comparison, DiffEstimate


def test_pair_comparison_orientation_rtt():
    comp = PairComparison(
        src="a", dst="b", metric=Metric.RTT, default_value=100.0,
        alt_value=80.0, via=("c",),
    )
    assert comp.improvement == pytest.approx(20.0)
    assert comp.ratio == pytest.approx(1.25)


def test_pair_comparison_orientation_bandwidth():
    comp = PairComparison(
        src="a", dst="b", metric=Metric.BANDWIDTH, default_value=50.0,
        alt_value=150.0, via=("c",),
    )
    assert comp.improvement == pytest.approx(100.0)
    assert comp.ratio == pytest.approx(3.0)


def test_pair_comparison_classify_requires_estimate():
    comp = PairComparison(
        src="a", dst="b", metric=Metric.PROP_DELAY, default_value=1.0,
        alt_value=2.0, via=(),
    )
    with pytest.raises(AnalysisError):
        comp.classify()


def test_loss_zero_classification():
    comp = PairComparison(
        src="a", dst="b", metric=Metric.LOSS, default_value=0.0,
        alt_value=0.0, via=("c",),
        estimate=DiffEstimate(diff=0.0, se=0.0, dof=1.0),
    )
    assert comp.classify() is Comparison.ZERO


def test_analyze_rtt_structure(mini_dataset):
    result = analyze(mini_dataset, Metric.RTT, min_samples=5)
    assert result.metric is Metric.RTT
    assert len(result) > 0
    for comp in result.comparisons:
        assert comp.estimate is not None
        assert comp.default_value == pytest.approx(
            result.graph.edge((comp.src, comp.dst)).value
        )
        assert np.isfinite(comp.improvement)
    # Comparisons are sorted by pair.
    pairs = [(c.src, c.dst) for c in result.comparisons]
    assert pairs == sorted(pairs)


def test_analyze_rejects_bandwidth(mini_dataset):
    with pytest.raises(AnalysisError):
        analyze(mini_dataset, Metric.BANDWIDTH)


def test_fraction_helpers(mini_dataset):
    result = analyze(mini_dataset, Metric.RTT, min_samples=5)
    frac = result.fraction_improved()
    assert 0.0 <= frac <= 1.0
    assert result.fraction_improved_by(10.0) <= frac
    assert result.fraction_improved_by(-10**9) == 1.0


def test_improvement_and_estimate_agree(mini_dataset):
    result = analyze(mini_dataset, Metric.RTT, min_samples=5)
    for comp in result.comparisons:
        assert comp.estimate.diff == pytest.approx(comp.improvement)


def test_classification_percentages_sum_to_100(mini_dataset):
    result = analyze(mini_dataset, Metric.RTT, min_samples=5)
    pct = result.classification_percentages()
    assert sum(pct.values()) == pytest.approx(100.0)


def test_loss_analysis(mini_dataset):
    result = analyze(mini_dataset, Metric.LOSS, min_samples=5)
    for comp in result.comparisons:
        assert 0.0 <= comp.default_value <= 1.0
        assert 0.0 <= comp.alt_value <= 1.0
    counts = result.classification_counts()
    assert sum(counts.values()) == len(result)


def test_prop_delay_analysis_has_no_estimates(mini_dataset):
    result = analyze(mini_dataset, Metric.PROP_DELAY, min_samples=5)
    assert all(c.estimate is None for c in result.comparisons)


def test_one_hop_restriction(mini_dataset):
    full = analyze(mini_dataset, Metric.RTT, min_samples=5)
    one = analyze(mini_dataset, Metric.RTT, min_samples=5, one_hop_only=True)
    assert all(len(c.via) == 1 for c in one.comparisons)
    by_pair = {(c.src, c.dst): c for c in full.comparisons}
    for comp in one.comparisons:
        pair = (comp.src, comp.dst)
        if pair in by_pair:
            assert by_pair[pair].alt_value <= comp.alt_value + 1e-9


def test_pairs_restriction(mini_dataset):
    graph = build_graph(mini_dataset, Metric.RTT, min_samples=5)
    some_pairs = sorted(graph.edges)[:4]
    result = analyze(mini_dataset, Metric.RTT, min_samples=5, pairs=some_pairs)
    assert {(c.src, c.dst) for c in result.comparisons} <= set(some_pairs)


def test_analyze_graph_direct(mini_dataset):
    graph = build_graph(mini_dataset, Metric.RTT, min_samples=5)
    result = analyze_graph(graph, dataset_name="X")
    assert result.dataset_name == "X"
    assert len(result) > 0


def test_analyze_bandwidth(mini_transfers):
    result = analyze_bandwidth(mini_transfers, LossComposition.PESSIMISTIC)
    assert result.metric is Metric.BANDWIDTH
    assert len(result) > 0
    for comp in result.comparisons:
        assert len(comp.via) == 1
        assert comp.estimate is None
    assert "pessimistic" in result.dataset_name


def test_cdf_outputs(mini_dataset):
    result = analyze(mini_dataset, Metric.RTT, min_samples=5)
    cdf = result.improvement_cdf()
    assert cdf.label == mini_dataset.meta.name
    assert cdf.x.size == len(result)
    rcdf = result.ratio_cdf("lbl")
    assert rcdf.label == "lbl"
    assert np.all(rcdf.x > 0)


def test_headline_band_on_mini_dataset(mini_dataset):
    """Even the small fixture should show the paper's qualitative effect."""
    result = analyze(mini_dataset, Metric.RTT, min_samples=5)
    assert 0.10 <= result.fraction_improved() <= 0.90

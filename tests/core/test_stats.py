"""Tests for the statistical machinery."""

import math

import numpy as np
import pytest
from hypothesis import given, settings, strategies as st

from repro.core.stats import (
    Comparison,
    DelayDistribution,
    DiffEstimate,
    SampleStats,
    StatsError,
    compose_loss,
    diff_of_loss_rates,
    diff_of_means,
    make_cdf,
    median_of_composed,
    welch_satterthwaite,
)

sample_arrays = st.lists(
    st.floats(min_value=0.1, max_value=1000.0), min_size=2, max_size=50
).map(np.array)


# -- SampleStats ------------------------------------------------------------

def test_sample_stats_from_samples():
    stats = SampleStats.from_samples([1.0, 2.0, 3.0])
    assert stats.n == 3
    assert stats.mean == pytest.approx(2.0)
    assert stats.var == pytest.approx(1.0)


def test_sample_stats_single_sample():
    stats = SampleStats.from_samples([5.0])
    assert stats.n == 1
    assert stats.var == 0.0


def test_sample_stats_validation():
    with pytest.raises(StatsError):
        SampleStats.from_samples([])
    with pytest.raises(StatsError):
        SampleStats(n=0, mean=1.0, var=0.0)
    with pytest.raises(StatsError):
        SampleStats(n=3, mean=1.0, var=-1.0)


@given(samples=sample_arrays)
def test_sample_stats_match_numpy(samples):
    stats = SampleStats.from_samples(samples)
    assert stats.mean == pytest.approx(float(samples.mean()))
    assert stats.var == pytest.approx(float(samples.var(ddof=1)))


# -- Welch-Satterthwaite ------------------------------------------------------

def test_welch_dof_single_component():
    stats = SampleStats(n=10, mean=5.0, var=4.0)
    assert welch_satterthwaite([stats]) == pytest.approx(9.0)


def test_welch_dof_bounds():
    a = SampleStats(n=10, mean=5.0, var=4.0)
    b = SampleStats(n=20, mean=3.0, var=1.0)
    dof = welch_satterthwaite([a, b])
    # Welch dof lies between min(n_i - 1) and sum(n_i - 1).
    assert 9.0 <= dof <= 28.0


def test_welch_degenerate_variances():
    a = SampleStats(n=10, mean=5.0, var=0.0)
    b = SampleStats(n=10, mean=3.0, var=0.0)
    assert welch_satterthwaite([a, b]) >= 1.0


def test_welch_requires_components():
    with pytest.raises(StatsError):
        welch_satterthwaite([])


# -- diff estimates ------------------------------------------------------------

def test_diff_of_means_point_estimate():
    default = SampleStats(n=100, mean=100.0, var=25.0)
    legs = [SampleStats(n=100, mean=40.0, var=16.0), SampleStats(n=100, mean=30.0, var=9.0)]
    est = diff_of_means(default, legs)
    assert est.diff == pytest.approx(30.0)
    assert est.se == pytest.approx(math.sqrt((25 + 16 + 9) / 100))


def test_diff_classification():
    clear_win = DiffEstimate(diff=30.0, se=1.0, dof=50.0)
    assert clear_win.classify() is Comparison.BETTER
    clear_loss = DiffEstimate(diff=-30.0, se=1.0, dof=50.0)
    assert clear_loss.classify() is Comparison.WORSE
    unclear = DiffEstimate(diff=1.0, se=5.0, dof=50.0)
    assert unclear.classify() is Comparison.INDETERMINATE
    silent = DiffEstimate(diff=0.0, se=0.0, dof=1.0)
    assert silent.classify() is Comparison.ZERO


def test_confidence_interval_widens_with_confidence():
    est = DiffEstimate(diff=10.0, se=2.0, dof=30.0)
    lo95, hi95 = est.confidence_interval(0.95)
    lo99, hi99 = est.confidence_interval(0.99)
    assert lo99 < lo95 < 10.0 < hi95 < hi99
    with pytest.raises(StatsError):
        est.confidence_interval(1.5)


def test_diff_of_means_requires_components():
    default = SampleStats(n=10, mean=1.0, var=1.0)
    with pytest.raises(StatsError):
        diff_of_means(default, [])


# -- loss composition -----------------------------------------------------------

def test_compose_loss_known_values():
    assert compose_loss([0.0, 0.0]) == 0.0
    assert compose_loss([0.1, 0.1]) == pytest.approx(0.19)
    assert compose_loss([1.0, 0.5]) == 1.0


def test_compose_loss_validation():
    with pytest.raises(StatsError):
        compose_loss([1.5])
    with pytest.raises(StatsError):
        compose_loss([-0.1])


@given(ps=st.lists(st.floats(min_value=0.0, max_value=1.0), min_size=1, max_size=8))
def test_compose_loss_bounds_and_monotonicity(ps):
    combined = compose_loss(ps)
    assert 0.0 <= combined <= 1.0
    assert combined >= max(ps) - 1e-12  # never better than the worst hop
    assert combined <= min(sum(ps), 1.0) + 1e-9  # union bound


def test_diff_of_loss_rates_matches_composition():
    default = SampleStats(n=200, mean=0.10, var=0.09)
    legs = [SampleStats(n=200, mean=0.02, var=0.02), SampleStats(n=200, mean=0.03, var=0.03)]
    est = diff_of_loss_rates(default, legs)
    assert est.diff == pytest.approx(0.10 - compose_loss([0.02, 0.03]))
    assert est.se > 0


# -- convolution medians -------------------------------------------------------

def test_delay_distribution_basics():
    dist = DelayDistribution.from_samples([10.0, 10.4, 11.2, 12.9], bin_width=1.0)
    assert dist.pmf.sum() == pytest.approx(1.0)
    assert dist.origin == 10.0
    assert 10.0 <= dist.median <= 13.0


def test_delay_distribution_validation():
    with pytest.raises(StatsError):
        DelayDistribution.from_samples([], bin_width=1.0)
    dist = DelayDistribution.from_samples([1.0, 2.0])
    with pytest.raises(StatsError):
        dist.quantile(0.0)


def test_convolution_of_point_masses():
    a = DelayDistribution.from_samples([10.0] * 5, bin_width=1.0)
    b = DelayDistribution.from_samples([20.0] * 5, bin_width=1.0)
    c = a.convolve(b)
    assert c.median == pytest.approx(30.0)
    assert c.mean == pytest.approx(30.0)


def test_convolution_requires_matching_bins():
    a = DelayDistribution.from_samples([1.0, 2.0], bin_width=1.0)
    b = DelayDistribution.from_samples([1.0, 2.0], bin_width=2.0)
    with pytest.raises(StatsError):
        a.convolve(b)


@given(a=sample_arrays, b=sample_arrays)
@settings(max_examples=25, deadline=None)
def test_convolution_mean_is_additive(a, b):
    da = DelayDistribution.from_samples(a, bin_width=1.0)
    db = DelayDistribution.from_samples(b, bin_width=1.0)
    composed = da.convolve(db)
    # Binning introduces at most one bin width of error per operand.
    assert composed.mean == pytest.approx(da.mean + db.mean, abs=2.0)


@given(a=sample_arrays, b=sample_arrays)
@settings(max_examples=25, deadline=None)
def test_composed_median_within_support(a, b):
    med = median_of_composed(
        [
            DelayDistribution.from_samples(a, bin_width=1.0),
            DelayDistribution.from_samples(b, bin_width=1.0),
        ]
    )
    assert a.min() + b.min() - 2.0 <= med <= a.max() + b.max() + 2.0


def test_median_of_composed_requires_input():
    with pytest.raises(StatsError):
        median_of_composed([])


# -- CDFs -----------------------------------------------------------------------

def test_make_cdf_monotone():
    series = make_cdf([3.0, 1.0, 2.0], label="x")
    np.testing.assert_allclose(series.x, [1.0, 2.0, 3.0])
    np.testing.assert_allclose(series.y, [1 / 3, 2 / 3, 1.0])
    assert series.label == "x"


def test_make_cdf_empty_rejected():
    with pytest.raises(StatsError):
        make_cdf([])


def test_cdf_fractions():
    series = make_cdf([-2.0, -1.0, 1.0, 2.0])
    assert series.fraction_above(0.0) == pytest.approx(0.5)
    assert series.fraction_below(0.0) == pytest.approx(0.5)
    assert series.value_at_fraction(0.5) == pytest.approx(0.0, abs=1.1)


def test_cdf_trimming():
    series = make_cdf(list(range(100)))
    trimmed = series.trimmed(10, 89)
    assert trimmed.x.min() == 10
    assert trimmed.x.max() == 89
    # y values preserved, so the curve no longer reaches 1.0 — just like
    # the paper's trimmed figures.
    assert trimmed.y.max() < 1.0


@given(values=st.lists(st.floats(min_value=-1e6, max_value=1e6), min_size=1, max_size=100))
def test_cdf_is_monotone_property(values):
    series = make_cdf(values)
    assert np.all(np.diff(series.x) >= 0)
    assert np.all(np.diff(series.y) > 0)
    assert series.y[-1] == pytest.approx(1.0)

"""Tests for the best-alternate-path search."""

import itertools
import math

import numpy as np
import pytest
from hypothesis import given, settings, strategies as st

from repro.core.altpath import (
    AlternatePathFinder,
    best_one_hop_alternates,
    loss_weight,
)
from repro.core.graph import EdgeData, GraphError, Metric, MetricGraph
from repro.core.stats import SampleStats


def _graph(metric, hosts, weights):
    g = MetricGraph(metric, hosts)
    for (src, dst), value in weights.items():
        g.add_edge(
            (src, dst),
            EdgeData(value=value, stats=SampleStats(n=5, mean=value, var=0.1)),
        )
    return g


def _triangle(direct=100.0, leg1=30.0, leg2=40.0):
    return _graph(
        Metric.RTT,
        ["a", "b", "c"],
        {
            ("a", "b"): direct,
            ("a", "c"): leg1,
            ("c", "b"): leg2,
            ("b", "a"): direct,
            ("c", "a"): leg1,
            ("b", "c"): leg2,
        },
    )


def test_loss_weight_properties():
    assert loss_weight(0.0) >= 0.0
    assert loss_weight(0.5) > loss_weight(0.1)
    assert math.isinf(loss_weight(1.0))


def test_triangle_detour_found():
    finder = AlternatePathFinder(_triangle())
    alt = finder.best(("a", "b"))
    assert alt is not None
    assert alt.via == ("c",)
    assert alt.value == pytest.approx(70.0)
    assert alt.hops == (("a", "c"), ("c", "b"))


def test_direct_edge_never_used():
    """Even when the direct edge is by far the best, the alternate must
    route around it."""
    finder = AlternatePathFinder(_triangle(direct=1.0))
    alt = finder.best(("a", "b"))
    assert alt is not None
    assert alt.value == pytest.approx(70.0)
    assert ("a", "b") not in alt.hops


def test_no_alternate_when_disconnected():
    g = _graph(Metric.RTT, ["a", "b", "c"], {("a", "b"): 10.0})
    finder = AlternatePathFinder(g)
    assert finder.best(("a", "b")) is None


def test_multi_hop_alternate():
    g = _graph(
        Metric.RTT,
        ["a", "b", "c", "d"],
        {
            ("a", "b"): 100.0,
            ("a", "c"): 10.0,
            ("c", "d"): 10.0,
            ("d", "b"): 10.0,
            ("c", "b"): 90.0,
        },
    )
    alt = AlternatePathFinder(g).best(("a", "b"))
    assert alt is not None
    assert alt.via == ("c", "d")
    assert alt.value == pytest.approx(30.0)


def test_best_all_matches_individual(mini_dataset):
    from repro.core.graph import build_graph

    g = build_graph(mini_dataset, Metric.RTT, min_samples=5)
    finder = AlternatePathFinder(g)
    batch = finder.best_all()
    for pair in sorted(g.edges)[:15]:
        single = finder.best(pair)
        if single is None:
            assert pair not in batch
        else:
            assert batch[pair].value == pytest.approx(single.value)


def test_alternate_invariants_on_real_graph(mini_dataset):
    from repro.core.graph import build_graph

    g = build_graph(mini_dataset, Metric.RTT, min_samples=5)
    alternates = AlternatePathFinder(g).best_all()
    assert alternates
    for pair, alt in alternates.items():
        # Path endpoints and continuity.
        assert alt.hops[0][0] == pair[0]
        assert alt.hops[-1][1] == pair[1]
        for (a, b), (c, d) in zip(alt.hops, alt.hops[1:]):
            assert b == c
        # The direct edge is not a constituent hop.
        assert pair not in alt.hops
        # Simple path: no repeated intermediate.
        assert len(set(alt.via)) == len(alt.via)
        # Value equals the hop-sum.
        assert alt.value == pytest.approx(sum(g.edge(h).value for h in alt.hops))


def test_one_hop_never_beats_full_search(mini_dataset):
    from repro.core.graph import build_graph

    g = build_graph(mini_dataset, Metric.RTT, min_samples=5)
    full = AlternatePathFinder(g).best_all()
    one_hop = best_one_hop_alternates(g)
    for pair, alt1 in one_hop.items():
        assert len(alt1.via) == 1
        if pair in full:
            assert full[pair].value <= alt1.value + 1e-9


def test_loss_alternates_compose_multiplicatively():
    g = _graph(
        Metric.LOSS,
        ["a", "b", "c"],
        {
            ("a", "b"): 0.2,
            ("a", "c"): 0.05,
            ("c", "b"): 0.05,
        },
    )
    alt = AlternatePathFinder(g).best(("a", "b"))
    assert alt is not None
    assert alt.value == pytest.approx(1 - 0.95 * 0.95)


def test_loss_zero_edges_usable():
    """Zero loss edges must survive the sparse representation."""
    g = _graph(
        Metric.LOSS,
        ["a", "b", "c"],
        {
            ("a", "b"): 0.3,
            ("a", "c"): 0.0,
            ("c", "b"): 0.0,
        },
    )
    alt = AlternatePathFinder(g).best(("a", "b"))
    assert alt is not None
    assert alt.value == pytest.approx(0.0)


def test_bandwidth_graph_rejected():
    g = MetricGraph(Metric.BANDWIDTH, ["a", "b"])
    with pytest.raises(GraphError):
        AlternatePathFinder(g)


@given(seed=st.integers(min_value=0, max_value=1000))
@settings(max_examples=40, deadline=None)
def test_direct_edge_never_its_own_alternate(seed):
    """Property: best_all never returns the direct edge as its own
    alternate, even when the direct edge is the unconstrained shortest
    path (the patched-CSR re-run path)."""
    rng = np.random.default_rng(seed)
    hosts = ["a", "b", "c", "d", "e", "f"]
    weights = {}
    for x in hosts:
        for y in hosts:
            if x == y or rng.random() < 0.2:
                continue  # leave some pairs unmeasured
            # Half the direct edges are far cheaper than any detour, so
            # the unconstrained shortest path IS the direct edge and the
            # finder must take the exclusion re-run.
            lo, hi = (0.01, 0.1) if rng.random() < 0.5 else (50.0, 100.0)
            weights[(x, y)] = float(rng.uniform(lo, hi))
    g = _graph(Metric.RTT, hosts, weights)
    alternates = AlternatePathFinder(g).best_all()
    for pair, alt in alternates.items():
        assert pair not in alt.hops
        assert alt.hops[0][0] == pair[0]
        assert alt.hops[-1][1] == pair[1]
        assert len(alt.hops) >= 2
        assert alt.value == pytest.approx(
            sum(g.edge(h).value for h in alt.hops)
        )


def test_rerun_matches_dense_exclusion(mini_dataset):
    """The patched-CSR exclusion re-run gives the same answers as naively
    rebuilding the CSR from a dense matrix with the entry removed."""
    from scipy.sparse import csr_matrix
    from scipy.sparse.csgraph import dijkstra

    from repro.core.graph import build_graph

    g = build_graph(mini_dataset, Metric.RTT, min_samples=5)
    finder = AlternatePathFinder(g)
    checked = 0
    for pair in sorted(g.edges)[:10]:
        i, j = g.host_index(pair[0]), g.host_index(pair[1])
        fast = finder._csr_excluding(i, j)
        dense = finder._weights.copy()
        dense[i, j] = np.inf
        finite = np.isfinite(dense)
        rows, cols = np.nonzero(finite)
        slow = csr_matrix((dense[rows, cols], (rows, cols)), shape=dense.shape)
        np.testing.assert_allclose(
            dijkstra(fast, directed=True, indices=i),
            dijkstra(slow, directed=True, indices=i),
        )
        checked += 1
    assert checked


def test_exclusion_does_not_mutate_base(mini_dataset):
    from repro.core.graph import build_graph

    g = build_graph(mini_dataset, Metric.RTT, min_samples=5)
    finder = AlternatePathFinder(g)
    pair = sorted(g.edges)[0]
    i, j = g.host_index(pair[0]), g.host_index(pair[1])
    before = finder._csr().data.copy()
    finder._csr_excluding(i, j)
    np.testing.assert_array_equal(finder._csr().data, before)


@given(seed=st.integers(min_value=0, max_value=500))
@settings(max_examples=25, deadline=None)
def test_random_graph_invariants(seed):
    """On random complete digraphs, the batch result equals a brute-force
    search over all simple paths (n=5 keeps enumeration cheap)."""
    rng = np.random.default_rng(seed)
    hosts = ["a", "b", "c", "d", "e"]
    weights = {
        (x, y): float(rng.uniform(1, 100))
        for x in hosts
        for y in hosts
        if x != y
    }
    g = _graph(Metric.RTT, hosts, weights)
    alternates = AlternatePathFinder(g).best_all()
    for pair in [("a", "b"), ("c", "e")]:
        best = math.inf
        src, dst = pair
        others = [h for h in hosts if h not in pair]
        for r in range(1, len(others) + 1):
            for mids in itertools.permutations(others, r):
                nodes = [src, *mids, dst]
                cost = sum(weights[(x, y)] for x, y in zip(nodes, nodes[1:]))
                best = min(best, cost)
        assert alternates[pair].value == pytest.approx(best)

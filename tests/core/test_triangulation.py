"""Tests for host-distance triangulation."""

import pytest

from repro.core.graph import EdgeData, Metric, MetricGraph, build_graph
from repro.core.stats import SampleStats
from repro.core.triangulation import (
    TriangulationError,
    prediction_quality,
    triangulate,
    triangulate_dataset,
    violation_rate,
)


def _prop_graph(weights: dict, hosts=None) -> MetricGraph:
    hosts = hosts or ["a", "b", "c"]
    g = MetricGraph(Metric.PROP_DELAY, hosts)
    for pair, value in weights.items():
        g.add_edge(
            pair, EdgeData(value=value, stats=SampleStats(n=5, mean=value, var=0.1))
        )
    return g


def test_requires_prop_graph(mini_dataset):
    rtt = build_graph(mini_dataset, Metric.RTT, min_samples=5)
    with pytest.raises(TriangulationError):
        triangulate(rtt)


def test_triangle_bounds_simple():
    g = _prop_graph(
        {
            ("a", "b"): 50.0,
            ("a", "c"): 20.0,
            ("c", "b"): 25.0,
        }
    )
    points = triangulate(g)
    ab = next(p for p in points if (p.src, p.dst) == ("a", "b"))
    assert ab.upper_ms == pytest.approx(45.0)
    assert ab.lower_ms == pytest.approx(5.0)
    assert ab.landmark == "c"
    assert ab.violates_triangle_inequality  # 45 < 50


def test_metric_space_has_no_violations():
    """Euclidean-consistent distances cannot violate the inequality."""
    coords = {"a": 0.0, "b": 10.0, "c": 4.0, "d": 7.0}
    weights = {
        (x, y): abs(coords[x] - coords[y])
        for x in coords
        for y in coords
        if x != y
    }
    g = _prop_graph(weights, hosts=list(coords))
    points = triangulate(g)
    assert points
    assert violation_rate(points) == 0.0
    quality = prediction_quality(points)
    assert quality.bracketing_rate == 1.0


def test_pairs_without_landmarks_skipped():
    g = _prop_graph({("a", "b"): 10.0})
    assert triangulate(g) == []


def test_violation_rate_requires_points():
    with pytest.raises(TriangulationError):
        violation_rate([])
    with pytest.raises(TriangulationError):
        prediction_quality([])


def test_triangulation_on_simulated_dataset(mini_dataset):
    points = triangulate_dataset(mini_dataset, min_samples=5)
    assert len(points) > 20
    rate = violation_rate(points)
    # The paper's premise: the Internet is not a metric space — a healthy
    # fraction of pairs violate the triangle inequality...
    assert 0.1 < rate < 0.9
    quality = prediction_quality(points)
    # ...yet triangulation still predicts distance reasonably well
    # (the Francis et al. result the paper says it can regenerate).
    assert quality.median_relative_error < 1.0
    assert quality.within_factor_two > 0.5


def test_violation_rate_matches_one_hop_prop_analysis(mini_dataset):
    """Cross-check: a triangle violation IS a superior one-hop
    propagation alternate, so the rates must agree exactly."""
    from repro.core.analysis import analyze

    points = triangulate_dataset(mini_dataset, min_samples=5)
    result = analyze(
        mini_dataset, Metric.PROP_DELAY, min_samples=5, one_hop_only=True
    )
    by_pair = {(c.src, c.dst): c for c in result.comparisons}
    agree = 0
    total = 0
    for p in points:
        comp = by_pair.get((p.src, p.dst))
        if comp is None:
            continue
        total += 1
        if (comp.improvement > 0) == p.violates_triangle_inequality:
            agree += 1
    assert total > 0
    assert agree == total

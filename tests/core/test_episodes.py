"""Tests for the simultaneous-episode (UW4-A) analysis."""

import numpy as np
import pytest

from repro.core.episodes import EpisodeError, analyze_episodes


def test_requires_episode_dataset(mini_dataset):
    with pytest.raises(EpisodeError):
        analyze_episodes(mini_dataset)


def test_episode_analysis_structure(episode_dataset):
    analysis = analyze_episodes(episode_dataset)
    assert analysis.episodes_analyzed > 0
    assert analysis.diffs
    for pair, obs in analysis.diffs.items():
        assert pair[0] != pair[1]
        assert pair[0] in episode_dataset.hosts
        for episode, diff in obs:
            assert episode >= 0
            assert np.isfinite(diff)
        # No pair observed more often than there are episodes.
        assert len(obs) <= len(episode_dataset.episodes())


def test_max_episodes_cap(episode_dataset):
    capped = analyze_episodes(episode_dataset, max_episodes=3)
    assert capped.episodes_analyzed <= 3


def test_pair_averaged_matches_manual_mean(episode_dataset):
    analysis = analyze_episodes(episode_dataset)
    averaged = analysis.pair_averaged()
    pair = next(iter(averaged))
    manual = float(np.mean([d for _, d in analysis.diffs[pair]]))
    assert averaged[pair] == pytest.approx(manual)


def test_unaveraged_has_wider_spread(episode_dataset):
    """Figure 11's key visual: the unaveraged CDF has broader tails than
    the pair-averaged one."""
    analysis = analyze_episodes(episode_dataset)
    pair_cdf = analysis.pair_averaged_cdf()
    raw_cdf = analysis.unaveraged_cdf()
    assert raw_cdf.x.size >= pair_cdf.x.size
    spread_raw = raw_cdf.value_at_fraction(0.95) - raw_cdf.value_at_fraction(0.05)
    spread_avg = pair_cdf.value_at_fraction(0.95) - pair_cdf.value_at_fraction(0.05)
    assert spread_raw >= spread_avg


def test_variability_is_substantial(episode_dataset):
    """'Not only are different alternate paths being selected as best in
    each episode, the difference ... is highly variable.'"""
    analysis = analyze_episodes(episode_dataset)
    stds = analysis.best_alternate_variability()
    assert stds
    assert np.median(list(stds.values())) > 1.0  # ms

"""Tests for host-popularity evaluation (Figures 12/13)."""

import numpy as np
import pytest

from repro.core.analysis import analyze_graph
from repro.core.graph import Metric, build_graph
from repro.core.hosts import (
    contribution_cdf,
    greedy_host_removal,
    improvement_contributions,
    removal_cdfs,
    tail_heaviness,
)


@pytest.fixture(scope="module")
def rtt_graph(mini_dataset):
    return build_graph(mini_dataset, Metric.RTT, min_samples=5)


def test_greedy_removal_basics(rtt_graph):
    steps = greedy_host_removal(rtt_graph, k=3)
    assert 1 <= len(steps) <= 3
    removed = [s.removed for s in steps]
    assert len(set(removed)) == len(removed)
    for step in steps:
        assert step.removed in rtt_graph.hosts
        assert step.result.comparisons


def test_greedy_removal_is_greedy(rtt_graph):
    """The first removal must be the single host whose removal minimizes
    the mean improvement."""
    steps = greedy_host_removal(rtt_graph, k=1)
    assert len(steps) == 1
    chosen_mean = steps[0].mean_improvement
    for host in rtt_graph.hosts:
        candidate = rtt_graph.without_hosts({host})
        result = analyze_graph(candidate)
        if result.comparisons:
            mean = float(result.improvements().mean())
            assert chosen_mean <= mean + 1e-9


def test_greedy_removal_rejects_bad_k(rtt_graph):
    with pytest.raises(ValueError):
        greedy_host_removal(rtt_graph, k=0)


def test_removal_cdfs(rtt_graph):
    baseline = analyze_graph(rtt_graph, dataset_name="MINI")
    steps = greedy_host_removal(rtt_graph, k=2)
    full, pruned = removal_cdfs(baseline, steps)
    assert full.label == "all hosts"
    assert "without top" in pruned.label
    assert full.x.size >= pruned.x.size


def test_removal_does_not_collapse_the_effect(rtt_graph):
    """The paper's finding: removing the top hosts leaves a substantial
    fraction of improved pairs."""
    baseline = analyze_graph(rtt_graph)
    steps = greedy_host_removal(rtt_graph, k=2)
    if steps:
        after = steps[-1].result.fraction_improved()
        assert after > baseline.fraction_improved() * 0.2


def test_contributions_structure(rtt_graph):
    contributions = improvement_contributions(rtt_graph)
    assert set(contributions) == set(rtt_graph.hosts)
    values = np.array(list(contributions.values()))
    assert np.all(values >= 0)
    assert values.mean() == pytest.approx(100.0)


def test_contribution_cdf_and_tail(rtt_graph):
    contributions = improvement_contributions(rtt_graph)
    cdf = contribution_cdf(contributions)
    assert cdf.x.size == len(rtt_graph.hosts)
    heaviness = tail_heaviness(contributions)
    assert 0.0 <= heaviness <= 1.0


def test_tail_heaviness_extremes():
    flat = {f"h{i}": 1.0 for i in range(10)}
    assert tail_heaviness(flat) == pytest.approx(0.1)
    spiked = {f"h{i}": (1000.0 if i == 0 else 0.0) for i in range(10)}
    assert tail_heaviness(spiked) == pytest.approx(1.0)
    assert tail_heaviness({}) == 0.0

"""Tests for AS-popularity analysis (Figure 14)."""

import pytest

from repro.core.analysis import analyze
from repro.core.ases import (
    ASAnalysisError,
    ASPoint,
    as_popularity,
    outlier_ases,
    popularity_correlation,
)
from repro.core.graph import Metric


@pytest.fixture(scope="module")
def result(mini_dataset):
    return analyze(mini_dataset, Metric.RTT, min_samples=5)


def test_as_popularity_structure(mini_dataset, result):
    points = as_popularity(mini_dataset, result)
    assert points
    asns = [p.asn for p in points]
    assert asns == sorted(asns)
    analyzed = len(result.comparisons)
    for p in points:
        assert 0 <= p.direct <= analyzed
        assert 0 <= p.alternate <= analyzed


def test_every_analyzed_pair_counts_somewhere(mini_dataset, result):
    points = as_popularity(mini_dataset, result)
    # Stub ASes of measured hosts must appear in at least one path.
    total_direct = sum(p.direct for p in points)
    assert total_direct >= len(result.comparisons)  # each path has >= 1 AS


def test_alternate_paths_use_more_ases(mini_dataset, result):
    """Alternate paths union several default paths, so total alternate
    appearances exceed direct appearances."""
    points = as_popularity(mini_dataset, result)
    assert sum(p.alternate for p in points) > sum(p.direct for p in points)


def test_requires_path_info(mini_dataset, result):
    stripped = mini_dataset.without_hosts([])
    stripped.path_info = {}
    with pytest.raises(ASAnalysisError):
        as_popularity(stripped, result)


def test_popularity_correlation(mini_dataset, result):
    points = as_popularity(mini_dataset, result)
    corr = popularity_correlation(points)
    # Popular transit ASes are popular in both populations.
    assert 0.3 < corr <= 1.0


def test_popularity_correlation_needs_points():
    with pytest.raises(ASAnalysisError):
        popularity_correlation([ASPoint(asn=1, direct=1, alternate=1)])


def test_outlier_detection():
    points = [
        ASPoint(asn=1, direct=100, alternate=90),
        ASPoint(asn=2, direct=100, alternate=5),   # outlier
        ASPoint(asn=3, direct=2, alternate=3),     # too small to count
    ]
    outliers = outlier_ases(points)
    assert [p.asn for p in outliers] == [2]


def test_no_dominant_ases_in_simulation(mini_dataset, result):
    """The paper's conclusion: no small set of ASes unduly inflates the
    alternates.  Outliers should be rare."""
    points = as_popularity(mini_dataset, result)
    outliers = outlier_ases(points, factor=6.0, min_count=20)
    assert len(outliers) <= max(1, len(points) // 10)

"""Tests for synthetic bandwidth composition."""

import pytest
from hypothesis import given, strategies as st

from repro.core.bandwidth import (
    LOSS_FLOOR,
    LossComposition,
    best_bandwidth_alternates,
    compose_bandwidth,
)
from repro.core.graph import GraphError, Metric, build_graph
from repro.measurement.tcp import mathis_bandwidth_kbps

losses = st.floats(min_value=0.0, max_value=0.5)


def test_composition_modes():
    assert LossComposition.OPTIMISTIC.combine(0.1, 0.02) == pytest.approx(0.1)
    assert LossComposition.PESSIMISTIC.combine(0.1, 0.02) == pytest.approx(
        1 - 0.9 * 0.98
    )
    assert LossComposition.SUM.combine(0.1, 0.02) == pytest.approx(0.12)
    assert LossComposition.SUM.combine(0.9, 0.9) == 1.0


@given(p1=losses, p2=losses)
def test_composition_ordering(p1, p2):
    opt = LossComposition.OPTIMISTIC.combine(p1, p2)
    pes = LossComposition.PESSIMISTIC.combine(p1, p2)
    add = LossComposition.SUM.combine(p1, p2)
    assert opt <= pes + 1e-12 <= add + 1e-9


def test_compose_bandwidth_adds_rtts():
    bw, rtt, loss = compose_bandwidth(50.0, 0.01, 70.0, 0.02, LossComposition.OPTIMISTIC)
    assert rtt == pytest.approx(120.0)
    assert loss == pytest.approx(0.02)
    assert bw == pytest.approx(mathis_bandwidth_kbps(120.0, 0.02))


def test_compose_bandwidth_loss_floor():
    bw, _, loss = compose_bandwidth(50.0, 0.0, 50.0, 0.0, LossComposition.OPTIMISTIC)
    assert loss == LOSS_FLOOR
    assert bw == pytest.approx(mathis_bandwidth_kbps(100.0, LOSS_FLOOR))


def test_optimistic_alternates_dominate_pessimistic(mini_transfers):
    graph = build_graph(mini_transfers, Metric.BANDWIDTH, min_samples=1)
    opt = best_bandwidth_alternates(graph, LossComposition.OPTIMISTIC)
    pes = best_bandwidth_alternates(graph, LossComposition.PESSIMISTIC)
    assert opt.keys() == pes.keys()
    for pair in opt:
        assert opt[pair].bandwidth_kbps >= pes[pair].bandwidth_kbps - 1e-9


def test_alternates_structure(mini_transfers):
    graph = build_graph(mini_transfers, Metric.BANDWIDTH, min_samples=1)
    alternates = best_bandwidth_alternates(graph, LossComposition.PESSIMISTIC)
    assert alternates
    for (src, dst), alt in alternates.items():
        assert alt.src == src and alt.dst == dst
        assert alt.via not in (src, dst)
        assert alt.bandwidth_kbps > 0
        # Composed RTT equals the two legs' means.
        leg1 = graph.edge((src, alt.via)).aux["rtt_mean"]
        leg2 = graph.edge((alt.via, dst)).aux["rtt_mean"]
        assert alt.rtt_ms == pytest.approx(leg1 + leg2)


def test_best_is_actually_best(mini_transfers):
    graph = build_graph(mini_transfers, Metric.BANDWIDTH, min_samples=1)
    alternates = best_bandwidth_alternates(graph, LossComposition.PESSIMISTIC)
    pair = next(iter(alternates))
    best = alternates[pair]
    src, dst = pair
    for via in graph.hosts:
        if via in (src, dst):
            continue
        if not (graph.has_edge((src, via)) and graph.has_edge((via, dst))):
            continue
        bw, _, _ = compose_bandwidth(
            graph.edge((src, via)).aux["rtt_mean"],
            graph.edge((src, via)).aux["loss_mean"],
            graph.edge((via, dst)).aux["rtt_mean"],
            graph.edge((via, dst)).aux["loss_mean"],
            LossComposition.PESSIMISTIC,
        )
        assert bw <= best.bandwidth_kbps + 1e-9


def test_non_bandwidth_graph_rejected(mini_dataset):
    graph = build_graph(mini_dataset, Metric.RTT, min_samples=5)
    with pytest.raises(GraphError):
        best_bandwidth_alternates(graph, LossComposition.OPTIMISTIC)

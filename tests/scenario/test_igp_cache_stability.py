"""IGP-memo stability across scenario apply/revert cycles.

Scenario events toggle AS-level structure only (adjacencies, exchange
index); the intra-AS router/link substrate is never touched.  The
topology's invalidation hook therefore clears only the BGP bag of
``routing_cache`` — IGP tables and their all-pairs matrices must stay
warm across ``link-down`` / ``new-transit`` apply/revert round-trips.
These are regression tests for that contract: if someone "simplifies"
the AS-level mutators back to a full cache clear, every dataset and
what-if run pays an O(routers^2) matrix rebuild per scenario segment.

(Substrate mutators — ``add_router``/``add_link`` — still clear the
full cache, which is why timelines must be constructed before IGP
state is warmed: ``new-transit`` materializes its exchange link at
construction time.)
"""

import math

import pytest

from repro.obs import runtime as obs
from repro.routing.bgp import BGPTable
from repro.routing.igp import IGPSuite
from repro.scenario.plan import ScenarioPlan
from repro.scenario.timeline import ScenarioTimeline
from repro.topology import TopologyConfig, generate_topology
from repro.topology.asys import ASLink, Relationship


def _topo_for(seed):
    return generate_topology(TopologyConfig.for_era("1999", seed=seed))


def _warm_igp(topo):
    """Build every IGP table and force its shortest-path state.

    Returns (tables, costs) so the caller can later check both object
    identity and numeric stability.
    """
    suite = IGPSuite(topo)
    tables = {}
    costs = {}
    for asn in topo.ases:
        table = suite.table(asn)
        routers = topo.routers_of(asn)
        src, dst = routers[0], routers[-1]
        costs[asn] = (src, dst, table.cost(src, dst))
        tables[asn] = table
    return tables, costs


def _scenario_plan(topo):
    """link-down plus new-transit, both chosen from live structure."""
    first = topo.as_links[0]
    # A pair with no current adjacency, for the new-transit event.
    linked = {frozenset((link.a, link.b)) for link in topo.as_links}
    asns = sorted(topo.ases)
    pair = next(
        (a, b)
        for i, a in enumerate(asns)
        for b in asns[i + 1:]
        if frozenset((a, b)) not in linked
    )
    return ScenarioPlan.parse(
        ";".join(
            [
                f"link-down:{first.a}-{first.b}:at=300:for=600",
                f"new-transit:{pair[0]}-{pair[1]}:at=600",
            ]
        )
    )


@pytest.mark.parametrize("seed", [3, 1999])
def test_igp_memo_survives_link_down_and_new_transit(seed):
    topo = _topo_for(seed)
    # Timeline first: new-transit materializes a substrate link at
    # construction time, which legitimately clears everything.
    timeline = ScenarioTimeline(topo, _scenario_plan(topo))
    tables, costs = _warm_igp(topo)
    bag = topo.routing_cache("igp")
    matrices = {
        asn: table._dist_rows
        for asn, table in tables.items()
        if table.vectorized
    }
    assert matrices, "expected at least one vectorized (matrix-backed) AS"

    BGPTable(topo).converge_all()
    for t in timeline.boundaries():
        timeline.advance_to(t)
        BGPTable(topo).converge_all()
    timeline.reset()

    # Same bag object, same table objects, same built matrices: nothing
    # was invalidated, nothing was rebuilt.
    assert topo.routing_cache("igp") is bag
    for asn, table in tables.items():
        assert bag[asn] is table
    for asn, rows in matrices.items():
        assert tables[asn]._dist_rows is rows
    # And the memoized answers are still the pristine ones.
    suite = IGPSuite(topo)
    for asn, (src, dst, cost) in costs.items():
        assert suite.table(asn) is tables[asn]
        assert math.isclose(suite.table(asn).cost(src, dst), cost)


def test_no_matrix_rebuilds_during_scenario():
    topo = _topo_for(1999)
    timeline = ScenarioTimeline(topo, _scenario_plan(topo))
    _warm_igp(topo)
    BGPTable(topo).converge_all()
    with obs.capture() as cap:
        for t in timeline.boundaries():
            timeline.advance_to(t)
            BGPTable(topo).converge_all()
        timeline.reset()
        # Re-query through a fresh suite: warm tables mean no builds.
        suite = IGPSuite(topo)
        for asn in topo.ases:
            routers = topo.routers_of(asn)
            suite.table(asn).cost(routers[0], routers[-1])
    counters = cap.blob()["metrics"]["counters"]
    assert counters.get("routing.igp.matrix_builds", 0) == 0
    assert counters.get("routing.igp.tables", 0) == 0
    # Sanity: BGP did reconverge inside the capture window (the capture
    # saw real routing work, so the zeros above are meaningful).
    assert any(k.startswith("routing.bgp") for k in counters), counters


def test_as_level_mutators_preserve_igp_bag():
    """remove/insert/add_as_link invalidate BGP only, never IGP."""
    topo = _topo_for(3)
    tables, _ = _warm_igp(topo)
    bag = topo.routing_cache("igp")
    topo.routing_cache("bgp")["probe"] = {}

    as_link = topo.as_links[0]
    index = topo.remove_as_link(as_link)
    assert "probe" not in topo.routing_cache("bgp")
    assert topo.routing_cache("igp") is bag

    topo.insert_as_link(index, as_link)
    assert topo.routing_cache("igp") is bag

    linked = {frozenset((link.a, link.b)) for link in topo.as_links}
    asns = sorted(topo.ases)
    a, b = next(
        (x, y)
        for i, x in enumerate(asns)
        for y in asns[i + 1:]
        if frozenset((x, y)) not in linked
    )
    city = topo.ases[a].cities[0].name
    added = topo.add_as_link(
        ASLink(a=a, b=b, rel_ab=Relationship.PEER, exchange_cities=(city,))
    )
    assert topo.routing_cache("igp") is bag
    for asn, table in tables.items():
        assert bag[asn] is table
    topo.remove_as_link(added)

"""Timeline tests: apply/revert identity, salvage correctness, semantics.

The headline property (the PR's differential guarantee): applying a
scenario's events and then reverting them leaves BGP tables
*route-for-route identical* to never applying anything — across seeds
and with parallel batch convergence — following the pattern of
``tests/routing/test_bgp_equivalence.py``.
"""

import pytest

from repro.routing.bgp import BGPTable
from repro.scenario.plan import ScenarioPlan
from repro.scenario.timeline import ScenarioError, ScenarioTimeline
from repro.topology import TopologyConfig, generate_topology
from repro.topology.asys import Relationship

from tests.routing.test_bgp_equivalence import _gadget


def _full_tables(topo, *, jobs=None):
    """Converge every destination and snapshot the route store."""
    table = BGPTable(topo)
    table.converge_all(jobs=jobs)
    store = topo.routing_cache("bgp")[table.effective_algorithm()]
    return {dest: dict(routes) for dest, routes in store.items()}


def _topo_for(seed):
    return generate_topology(TopologyConfig.for_era("1999", seed=seed))


def _demo_plan(topo):
    """A plan touching several kinds, where every event reverts."""
    first = topo.as_links[0]
    second = topo.as_links[len(topo.as_links) // 2]
    clauses = [f"link-down:{first.a}-{first.b}:at=300:for=600"]
    if {second.a, second.b} != {first.a, first.b}:
        clauses.append(f"link-down:{second.a}-{second.b}:at=600:for=300")
    return ScenarioPlan.parse(";".join(clauses))


@pytest.mark.parametrize("seed", [3, 11, 1999])
@pytest.mark.parametrize("jobs", [None, 2])
def test_apply_then_revert_is_route_identical(seed, jobs):
    pristine_topo = _topo_for(seed)
    baseline = _full_tables(pristine_topo, jobs=jobs)

    topo = _topo_for(seed)
    plan = _demo_plan(topo)
    timeline = ScenarioTimeline(topo, plan)
    _full_tables(topo, jobs=jobs)  # warm tables for the salvage to sift
    for t in timeline.boundaries():
        timeline.advance_to(t)
        _full_tables(topo, jobs=jobs)
    assert _full_tables(topo, jobs=jobs) == baseline
    timeline.reset()
    assert _full_tables(topo, jobs=jobs) == baseline


@pytest.mark.parametrize("seed", [3, 11])
def test_selective_salvage_matches_full_reconvergence(seed):
    plans = [
        lambda topo: _demo_plan(topo),
        lambda topo: ScenarioPlan.parse(
            f"node-down:{min(topo.ases)}:at=300"
        ),
    ]
    for make_plan in plans:
        tables = {}
        for mode in ("affected", "full"):
            topo = _topo_for(seed)
            timeline = ScenarioTimeline(topo, make_plan(topo), reconverge=mode)
            _full_tables(topo)
            timeline.advance_to(300.0)
            tables[mode] = _full_tables(topo)
        assert tables["affected"] == tables["full"]


def test_salvage_retains_unaffected_destinations():
    # 1 -- 2 -- 3 and an isolated leaf 4 under 3: removing 1-2 cannot
    # affect destination 4's subtree routes at 3.
    topo = _gadget(
        4,
        [
            (1, 2, Relationship.PEER),
            (2, 3, Relationship.PEER),
            (3, 4, Relationship.CUSTOMER),
        ],
    )
    _full_tables(topo)
    plan = ScenarioPlan.parse("link-down:1-2:at=0")
    timeline = ScenarioTimeline(topo, plan)
    timeline.advance_to(0.0)
    store = topo.routing_cache("bgp")
    retained = store["gao-rexford"]
    # dest 4: routes at 2, 3 and 4 never traverse 1-2 (2 won't re-export
    # its peer-learned route, so 1 never had a route to 4 to begin with).
    assert 4 in retained
    assert set(retained[4]) == {2, 3, 4}
    # dest 1's table had a route at 2 via the removed adjacency: evicted.
    assert 1 not in retained


def test_node_down_isolates_and_reverts():
    topo = _gadget(
        3, [(1, 2, Relationship.CUSTOMER), (2, 3, Relationship.CUSTOMER)]
    )
    baseline = _full_tables(topo)
    plan = ScenarioPlan.parse("node-down:2:at=0")
    timeline = ScenarioTimeline(topo, plan)
    timeline.advance_to(0.0)
    table = BGPTable(topo)
    table.converge_all()
    assert table.route(1, 3) is None
    assert table.route(3, 1) is None
    assert table.route(1, 2) is None
    timeline.reset()
    assert _full_tables(topo) == baseline


def test_depeer_is_permanent_and_overlap_is_noop():
    topo = _gadget(
        3, [(1, 2, Relationship.PEER), (2, 3, Relationship.CUSTOMER)]
    )
    plan = ScenarioPlan.parse("depeer:1-2:at=0;node-down:1:at=300")
    timeline = ScenarioTimeline(topo, plan)
    timeline.advance_to(0.0)
    assert topo.as_link_between(1, 2) is None
    # node-down of the already-disconnected AS1 must be a harmless no-op.
    timeline.advance_to(300.0)
    table = BGPTable(topo)
    table.converge_all()
    assert table.route(2, 3) is not None
    timeline.reset()
    assert topo.as_link_between(1, 2) is not None


def test_new_transit_and_region_outage_on_generated_topology():
    topo = _topo_for(3)
    baseline = _full_tables(topo)
    # Find two non-adjacent ASes sharing a core-router city.
    found = None
    asns = sorted(topo.ases)
    for a in asns:
        for b in asns:
            if a >= b or topo.as_link_between(a, b) is not None:
                continue
            shared = [
                c.name
                for c in topo.ases[a].cities
                if topo.has_core_router(a, c.name)
                and topo.has_core_router(b, c.name)
            ]
            if shared:
                found = (a, b)
                break
        if found:
            break
    assert found is not None, "generator topology has no transit candidate"
    a, b = found
    n_links = len(topo.links)
    region = topo.routers[0].city.region
    plan = ScenarioPlan.parse(
        f"new-transit:{a}-{b}:at=300;region-outage:{region}:at=600:for=300"
    )
    timeline = ScenarioTimeline(topo, plan)
    # new-transit pre-materializes its substrate link at construction.
    assert len(topo.links) == n_links + 1
    timeline.advance_to(300.0)
    assert topo.as_link_between(a, b) is not None
    assert topo.exchange_links_between(a, b)
    timeline.advance_to(600.0)  # region dark
    timeline.advance_to(900.0)  # region restored
    timeline.reset()
    assert topo.as_link_between(a, b) is None
    assert not topo.exchange_links_between(a, b)
    assert _full_tables(topo) == baseline


def test_validation_errors():
    topo = _gadget(2, [(1, 2, Relationship.PEER)])
    for spec, fragment in [
        ("link-down:1-9:at=0", "unknown ASN"),
        ("link-down:1-2:at=0;depeer:7-8:at=0", "unknown ASN"),
        ("region-outage:atlantis:at=0:for=300", "no routers in region"),
        ("new-transit:1-2:at=0", "already adjacent"),
    ]:
        with pytest.raises(ScenarioError, match=fragment):
            ScenarioTimeline(topo, ScenarioPlan.parse(spec))
    with pytest.raises(ValueError, match="reconverge mode"):
        ScenarioTimeline(topo, ScenarioPlan(), reconverge="lazy")


def test_timeline_is_monotonic():
    topo = _gadget(2, [(1, 2, Relationship.PEER)])
    timeline = ScenarioTimeline(
        topo, ScenarioPlan.parse("link-down:1-2:at=300:for=300")
    )
    timeline.advance_to(300.0)
    with pytest.raises(ScenarioError, match="monotonic"):
        timeline.advance_to(0.0)
    timeline.reset()
    assert timeline.now == 0.0
    timeline.advance_to(0.0)  # fine again after reset

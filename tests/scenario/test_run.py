"""End-to-end scenario-run tests: determinism, storms, CLI contract."""

import numpy as np
import pytest

from repro.cli import main as repro_main
from repro.datasets.io import save_dataset
from repro.netsim.conditions import BUCKET_SECONDS, NetworkConditions
from repro.netsim.dynamics import DynamicPathSampler
from repro.routing.bgp import ROUTING_JOBS_ENV_VAR
from repro.scenario.plan import ScenarioPlan
from repro.scenario.run import ScenarioRun, StormFlapModel
from repro.topology import TopologyConfig, generate_topology
from repro.topology.asys import Relationship

from tests.routing.test_bgp_equivalence import _gadget


class _QuietBase:
    """Flap-model stand-in that never flaps on its own."""

    window_s = BUCKET_SECONDS

    def is_flappy(self, pair_index):
        return False

    def on_secondary(self, pair_index, t):
        return False


def test_storm_flap_model_oscillates_members_only():
    plan = ScenarioPlan.parse("flap-storm:a->*:at=300:for=600")
    model = StormFlapModel(_QuietBase(), plan, ["a->b", "c->d"])
    assert model.window_s == BUCKET_SECONDS
    assert model.is_flappy(0)
    assert not model.is_flappy(1)
    # Inside [300, 900): secondary on odd congestion buckets.
    assert model.on_secondary(0, 300.0)      # bucket 1
    assert not model.on_secondary(0, 600.0)  # bucket 2
    assert not model.on_secondary(0, 899.0)  # still bucket 2
    # Outside the storm interval the base model decides (quiet).
    assert not model.on_secondary(0, 0.0)
    assert not model.on_secondary(0, 900.0)
    # Non-members always delegate.
    assert not model.on_secondary(1, 300.0)


def test_dynamic_sampler_rejects_misaligned_flap_window():
    topo = _gadget(2, [(1, 2, Relationship.PEER)])
    conditions = NetworkConditions(topo, seed=0)

    class Misaligned(_QuietBase):
        window_s = BUCKET_SECONDS * 1.5

    with pytest.raises(ValueError, match="multiple of the congestion bucket"):
        DynamicPathSampler(conditions, [], [], Misaligned())
    # An aligned multi-bucket window is fine.
    class Aligned(_QuietBase):
        window_s = BUCKET_SECONDS * 3

    DynamicPathSampler(conditions, [], [], Aligned())


def _small_plan(seed):
    topo = generate_topology(TopologyConfig.for_era("1999", seed=seed))
    al = topo.as_links[0]
    return f"link-down:{al.a}-{al.b}:at=300:for=300"


def test_replay_is_byte_identical_across_jobs(tmp_path, monkeypatch):
    spec = _small_plan(11)
    blobs = []
    for jobs in (None, None, "2"):
        if jobs is None:
            monkeypatch.delenv(ROUTING_JOBS_ENV_VAR, raising=False)
        else:
            monkeypatch.setenv(ROUTING_JOBS_ENV_VAR, jobs)
        run = ScenarioRun(ScenarioPlan.parse(spec), seed=11, n_hosts=6)
        dataset, report = run.execute()
        path = tmp_path / f"whatif-{len(blobs)}.jsonl"
        save_dataset(dataset, path)
        blobs.append(path.read_bytes())
        assert not report.permanently_disconnected
    monkeypatch.delenv(ROUTING_JOBS_ENV_VAR, raising=False)
    assert blobs[0] == blobs[1] == blobs[2]


def test_node_down_disconnects_pairs_and_records_nan_rows():
    base = ScenarioRun(ScenarioPlan(), seed=1999, n_hosts=6)
    downed_asn = base.topo.host(base.hosts[0]).asn
    run = ScenarioRun(
        ScenarioPlan.parse(f"node-down:{downed_asn}:at=300"),
        seed=1999,
        n_hosts=6,
    )
    dataset, report = run.execute()
    assert report.permanently_disconnected
    for src, dst in report.permanently_disconnected:
        assert downed_asn in (run.topo.host(src).asn, run.topo.host(dst).asn)
    # Unreachable attempts land in the dataset as fully-lost probe rows.
    assert any(
        np.isnan(rec.rtt_samples).all() for rec in dataset.records
    )
    text = report.render()
    assert "permanently disconnected pairs" in text
    assert "AS-disjoint" in text
    assert report.availability.headline


def test_whatif_cli_exit_codes(tmp_path, capsys):
    # Misaligned time: rejected by the parser, clause named. Exit 2.
    rc = repro_main(["whatif", "--scenario", "link-down:1-2:at=450"])
    assert rc == 2
    err = capsys.readouterr().err
    assert "bad scenario" in err and "link-down:1-2:at=450" in err

    # Valid grammar, impossible against the topology. Exit 2.
    rc = repro_main(["whatif", "--scenario", "link-down:1-99999:at=300"])
    assert rc == 2
    assert "bad scenario" in capsys.readouterr().err

    # --scenario and --scenario-file are mutually exclusive. Exit 2.
    plan_file = tmp_path / "p.plan"
    plan_file.write_text("depeer:1-2:at=0\n")
    rc = repro_main(
        ["whatif", "--scenario", "node-down:1:at=0",
         "--scenario-file", str(plan_file)]
    )
    assert rc == 2
    assert "not both" in capsys.readouterr().err

    rc = repro_main(["whatif", "--scenario-file", str(tmp_path / "missing")])
    assert rc == 2
    assert "unreadable scenario file" in capsys.readouterr().err


def test_whatif_cli_permanent_disconnection_exits_3(capsys):
    base = ScenarioRun(ScenarioPlan(), seed=1999, n_hosts=6)
    downed_asn = base.topo.host(base.hosts[0]).asn
    rc = repro_main(
        ["whatif", "--scenario", f"node-down:{downed_asn}:at=300",
         "--seed", "1999", "--hosts", "6"]
    )
    assert rc == 3
    captured = capsys.readouterr()
    assert "pairs permanently disconnected" in captured.err
    assert "What-if scenario report" in captured.out


def test_whatif_cli_happy_path_writes_dataset(tmp_path, capsys):
    spec = _small_plan(11)
    out = tmp_path / "whatif.jsonl"
    trace = tmp_path / "trace.json"
    rc = repro_main(
        ["whatif", "--scenario", spec, "--seed", "11", "--hosts", "6",
         "-o", str(out), "--trace", str(trace)]
    )
    assert rc == 0
    text = capsys.readouterr().out
    assert "What-if scenario report" in text
    assert "worst single-link failure" in text
    assert out.exists() and trace.exists()

"""Scenario-plan grammar tests, plus the shared round-trip property.

The round-trip property — ``parse(plan.to_spec()) == plan`` — is asserted
for *both* plan grammars built on :func:`repro.faults.plan.split_clause`
(fault plans and scenario plans), over hypothesis-generated plans, so the
shared tokenizer cannot drift for one consumer without the other
noticing.
"""

import pytest
from hypothesis import given, settings, strategies as st

from repro.faults.plan import FaultPlan, FaultSpec, KIND_SITES
from repro.netsim.conditions import BUCKET_SECONDS
from repro.scenario.plan import (
    SCENARIO_KINDS,
    ScenarioEvent,
    ScenarioPlan,
    ScenarioPlanError,
)


def test_parse_compact_clauses():
    plan = ScenarioPlan.parse(
        "link-down:2-7:at=1800:for=900;node-down:9:at=3600;"
        "flap-storm:whatif-*->whatif-3:at=1200:for=1800"
    )
    assert [e.kind for e in plan.events] == [
        "link-down", "node-down", "flap-storm",
    ]
    assert plan.events[0].endpoints == (2, 7)
    assert plan.events[0].end_s == 2700.0
    assert plan.events[1].asn == 9
    assert plan.events[1].for_s is None
    assert plan.events[2].key == "whatif-*->whatif-3"


def test_parse_empty_is_noop_plan():
    assert ScenarioPlan.parse("") == ScenarioPlan()
    assert not ScenarioPlan.parse("  ")
    assert ScenarioPlan.parse("").last_transition_s == 0.0


def test_parse_json_array():
    plan = ScenarioPlan.parse(
        '[{"kind": "depeer", "key": "4-11", "at_s": 2400},'
        ' {"kind": "region-outage", "key": "na-west", "at_s": 600,'
        '  "for_s": 600}]'
    )
    assert plan.events[0] == ScenarioEvent(kind="depeer", key="4-11", at_s=2400)
    assert plan.events[1].for_s == 600
    assert ScenarioPlan.parse(plan.to_spec()) == plan


def test_event_partition_helpers():
    plan = ScenarioPlan.parse(
        "flap-storm:a->b:at=0:for=300;link-down:1-2:at=300"
    )
    assert [e.kind for e in plan.storms()] == ["flap-storm"]
    assert [e.kind for e in plan.topology_events()] == ["link-down"]
    assert plan.last_transition_s == 300.0


@pytest.mark.parametrize(
    ("bad", "fragment"),
    [
        ("warp:1-2:at=300", "unknown scenario kind"),
        ("link-down:1-2", "needs at=T"),
        ("link-down:1-2:at=soon", "at must be a number"),
        ("link-down:1-2:at=450", "not a multiple of the congestion bucket"),
        ("link-down:1-2:at=300:for=100", "not a multiple"),
        ("link-down:1-2:at=-300", "at must be >= 0"),
        ("link-down:1-2:at=300:for=0", "for must be > 0"),
        ("node-down:9:at=300:for=300", "permanent event takes no 'for='"),
        ("depeer:4-11:at=0:for=300", "permanent event takes no 'for='"),
        ("region-outage:na-west:at=0", "'for=' duration is required"),
        ("flap-storm:a->b:at=0", "'for=' duration is required"),
        ("link-down:7:at=300", "must be '<asA>-<asB>'"),
        ("link-down:7-7:at=300", "cannot link to itself"),
        ("node-down:east:at=300", "must be an ASN"),
        ("link-down:1-2:at=300:wat=1", "unknown option 'wat'"),
        ('["not-an-object"]', "must be an object"),
        ('[{"kind": "depeer", "key": "1-2", "at_s": 0, "x": 1}]',
         "unknown fields"),
        ("[oops", "bad JSON scenario plan"),
    ],
)
def test_parse_rejects_bad_clauses(bad, fragment):
    with pytest.raises(ScenarioPlanError, match=fragment):
        ScenarioPlan.parse(bad)


def test_errors_name_clause_text_and_position():
    with pytest.raises(
        ScenarioPlanError,
        match=r"clause 2 \('node-down:9:at=450'\)",
    ):
        ScenarioPlan.parse("link-down:1-2:at=300;node-down:9:at=450")


# -- shared round-trip property ---------------------------------------------

_aligned = st.integers(min_value=0, max_value=48).map(
    lambda k: k * BUCKET_SECONDS
)
_aligned_pos = st.integers(min_value=1, max_value=48).map(
    lambda k: k * BUCKET_SECONDS
)
_as_pair = st.tuples(
    st.integers(min_value=1, max_value=400),
    st.integers(min_value=1, max_value=400),
).filter(lambda p: p[0] != p[1]).map(lambda p: f"{p[0]}-{p[1]}")
_glob = st.text(
    alphabet="abz0-*?>", min_size=1, max_size=12
).filter(lambda s: ":" not in s and ";" not in s and "=" not in s)


@st.composite
def scenario_events(draw):
    kind = draw(st.sampled_from(SCENARIO_KINDS))
    at_s = draw(_aligned)
    if kind in ("link-down", "depeer", "new-transit"):
        key = draw(_as_pair)
    elif kind == "node-down":
        key = str(draw(st.integers(min_value=1, max_value=400)))
    elif kind == "region-outage":
        key = draw(st.sampled_from(["na-west", "na-east", "europe", "asia"]))
    else:  # flap-storm
        key = draw(_glob)
    if kind in ("region-outage", "flap-storm"):
        for_s = draw(_aligned_pos)
    elif kind == "link-down":
        for_s = draw(st.one_of(st.none(), _aligned_pos))
    else:
        for_s = None
    return ScenarioEvent(kind=kind, key=key, at_s=at_s, for_s=for_s)


@settings(max_examples=200, deadline=None)
@given(st.lists(scenario_events(), max_size=6).map(tuple))
def test_scenario_plan_round_trips(events):
    plan = ScenarioPlan(events=events)
    assert ScenarioPlan.parse(plan.to_spec()) == plan


@st.composite
def fault_specs(draw):
    kind = draw(st.sampled_from(sorted(KIND_SITES)))
    key = draw(
        st.one_of(
            st.just("*"),
            st.text(
                alphabet="abcxyz0123-", min_size=1, max_size=8
            ).filter(lambda s: s not in ("",)),
        )
    )
    times = draw(st.integers(min_value=1, max_value=9))
    # Only `slow` clauses serialize their delay; other kinds must keep
    # the default for to_spec() to be lossless.
    delay_s = (
        draw(st.integers(min_value=1, max_value=40).map(lambda d: d / 4))
        if kind == "slow"
        else FaultSpec(kind=kind, key=key).delay_s
    )
    return FaultSpec(kind=kind, key=key, times=times, delay_s=delay_s)


@settings(max_examples=200, deadline=None)
@given(st.lists(fault_specs(), max_size=6).map(tuple))
def test_fault_plan_round_trips(specs):
    plan = FaultPlan(specs=specs)
    assert FaultPlan.parse(plan.to_spec()) == plan

"""Tests for axis scales and tick generation."""

import math

import pytest
from hypothesis import given, strategies as st

from repro.viz.scale import LinearScale, ScaleError, data_range, nice_number


def test_nice_number_values():
    assert nice_number(1.0) == 1.0
    assert nice_number(2.7) == 2.0
    assert nice_number(4.0) == 5.0
    assert nice_number(8.0) == 10.0
    assert nice_number(0.013) == pytest.approx(0.01)
    assert nice_number(37.0, round_down=True) == 20.0


def test_nice_number_validation():
    with pytest.raises(ScaleError):
        nice_number(0.0)
    with pytest.raises(ScaleError):
        nice_number(-3.0)
    with pytest.raises(ScaleError):
        nice_number(float("inf"))


@given(value=st.floats(min_value=1e-6, max_value=1e9))
def test_nice_number_within_factor(value):
    nice = nice_number(value)
    assert value / 5.0 <= nice <= value * 5.0
    # Result is 1, 2, or 5 times a power of ten.
    exponent = math.floor(math.log10(nice) + 1e-12)
    fraction = round(nice / (10 ** exponent), 6)
    assert fraction in (1.0, 2.0, 5.0, 10.0)


def test_linear_scale_mapping():
    scale = LinearScale(0.0, 10.0, 100.0, 200.0)
    assert scale(0.0) == 100.0
    assert scale(10.0) == 200.0
    assert scale(5.0) == 150.0
    # Clamped outside the domain.
    assert scale(-5.0) == 100.0
    assert scale(50.0) == 200.0


def test_linear_scale_inverted_output():
    scale = LinearScale(0.0, 1.0, 300.0, 0.0)  # SVG-style inversion
    assert scale(0.0) == 300.0
    assert scale(1.0) == 0.0


def test_degenerate_domain_widened():
    scale = LinearScale(5.0, 5.0, 0.0, 100.0)
    assert scale.lo < 5.0 < scale.hi
    assert 0.0 <= scale(5.0) <= 100.0


def test_non_finite_domain_rejected():
    with pytest.raises(ScaleError):
        LinearScale(float("nan"), 1.0, 0.0, 1.0)


def test_ticks_cover_domain():
    scale = LinearScale(-57.0, 143.0, 0.0, 1.0)
    ticks = scale.ticks()
    assert len(ticks.positions) >= 3
    assert all(-57.0 <= p <= 143.0 + 1e-9 for p in ticks.positions)
    assert len(ticks.positions) == len(ticks.labels)
    # Zero appears as "0", not "-0".
    if 0.0 in ticks.positions:
        assert ticks.labels[ticks.positions.index(0.0)] == "0"


def test_ticks_validation():
    scale = LinearScale(0.0, 1.0, 0.0, 1.0)
    with pytest.raises(ScaleError):
        scale.ticks(target_count=1)


def test_small_step_labels_have_decimals():
    scale = LinearScale(0.0, 0.1, 0.0, 1.0)
    ticks = scale.ticks()
    assert any("." in lab for lab in ticks.labels)


def test_data_range():
    lo, hi = data_range([(1.0, 5.0), (3.0, 9.0)])
    assert lo < 1.0 and hi > 9.0
    with pytest.raises(ScaleError):
        data_range([()])


def test_data_range_ignores_non_finite():
    lo, hi = data_range([(1.0, float("nan"), float("inf"), 2.0)])
    assert lo <= 1.0 and hi >= 2.0 and math.isfinite(hi)

"""Tests for ASCII chart rendering."""

import numpy as np
import pytest

from repro.core.stats import make_cdf
from repro.viz.ascii import ascii_cdf, ascii_scatter


@pytest.fixture()
def series():
    rng = np.random.default_rng(5)
    return [
        make_cdf(rng.normal(30, 20, 150), "alpha"),
        make_cdf(rng.normal(-20, 50, 150), "beta"),
    ]


def test_cdf_plot_structure(series):
    text = ascii_cdf(series, title="demo", width=60, height=12)
    lines = text.splitlines()
    assert lines[0] == "demo"
    assert len(lines) == 1 + 12 + 2 + 1  # title + rows + axis/labels + legend
    assert "*" in text and "o" in text   # both glyphs drawn
    assert "alpha" in text and "beta" in text
    # Zero marker column (range crosses zero).
    assert "|" in text


def test_cdf_plot_monotone_top_row(series):
    text = ascii_cdf(series, width=60, height=12)
    rows = [l.split("|", 1)[1] for l in text.splitlines()[:12]]
    # The top row's glyphs must sit to the right of the bottom row's.
    top = rows[0]
    bottom = rows[-1]
    first_top = min(top.index(g) for g in "*o" if g in top)
    first_bottom = min(bottom.index(g) for g in "*o" if g in bottom)
    assert first_top >= first_bottom


def test_cdf_plot_validation(series):
    with pytest.raises(ValueError):
        ascii_cdf([])
    with pytest.raises(ValueError):
        ascii_cdf(series, width=5)


def test_cdf_plot_explicit_range(series):
    text = ascii_cdf(series, x_range=(-100.0, 100.0), width=60, height=10)
    assert "-100" in text and "100" in text


def test_scatter_structure():
    rng = np.random.default_rng(6)
    text = ascii_scatter(
        rng.normal(0, 10, 50),
        rng.normal(0, 5, 50),
        title="pts",
        width=50,
        height=12,
        x_label="ms",
        y_label="ms",
    )
    lines = text.splitlines()
    assert lines[0] == "pts"
    assert "*" in text
    assert "x: [" in lines[-1] and "y: [" in lines[-1]


def test_scatter_validation():
    with pytest.raises(ValueError):
        ascii_scatter([], [])
    with pytest.raises(ValueError):
        ascii_scatter([1.0], [1.0, 2.0])

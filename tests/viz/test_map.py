"""Tests for geographic topology maps."""

import pytest

from repro.topology.network import Topology
from repro.viz.map import save_topology_map, topology_map


def test_map_structure(topo1999):
    svg = topology_map(topo1999, title="Test Map")
    assert svg.startswith("<svg")
    assert "Test Map" in svg
    assert svg.count("<circle") > 20       # cities + hosts + legend
    assert svg.count("<line") > 50         # inter-city links
    assert "backbone" in svg and "exchange" in svg  # legend


def test_host_cities_highlighted(topo1999):
    svg = topology_map(topo1999)
    host_city = topo1999.hosts[0].city.name
    assert host_city in svg
    assert "#c23b22" in svg


def test_empty_topology_rejected():
    with pytest.raises(ValueError):
        topology_map(Topology())


def test_save(tmp_path, topo1995):
    out = save_topology_map(topo1995, tmp_path / "maps" / "t.svg", title="1995")
    assert out.exists()
    assert out.read_text().startswith("<svg")

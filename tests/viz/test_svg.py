"""Tests for the SVG chart renderer."""

import numpy as np
import pytest

from repro.core.stats import make_cdf
from repro.viz.svg import ChartStyle, SVGChart, cdf_chart


@pytest.fixture()
def series():
    rng = np.random.default_rng(3)
    return [
        make_cdf(rng.normal(20, 40, 200), "one"),
        make_cdf(rng.normal(-10, 60, 200), "two"),
    ]


def test_render_structure(series):
    chart = cdf_chart(series, title="Title & Co", x_label="ms")
    svg = chart.render()
    assert svg.startswith("<svg")
    assert svg.rstrip().endswith("</svg>")
    assert svg.count("<polyline") == 2
    assert "Title &amp; Co" in svg          # escaped
    assert "Fraction of paths" in svg
    assert "one" in svg and "two" in svg    # legend entries


def test_zero_rule_present_when_range_crosses_zero(series):
    chart = cdf_chart(series, title="t", x_label="x")
    assert 'stroke-dasharray="3,3"' in chart.render()


def test_explicit_range_trims(series):
    chart = cdf_chart(series, title="t", x_label="x", x_range=(0.0, 50.0))
    svg = chart.render()
    # No zero rule: zero sits on the boundary, not inside.
    assert svg.count("<polyline") <= 2


def test_empty_series_rejected():
    with pytest.raises(ValueError):
        cdf_chart([], title="t", x_label="x")


def test_requires_ranges_before_drawing():
    chart = SVGChart(title="t", x_label="x", y_label="y")
    with pytest.raises(RuntimeError):
        chart.add_step_curve([1.0], [0.5], "s")


def test_scatter_and_guides():
    chart = SVGChart(title="scatter", x_label="x", y_label="y")
    chart.set_x_range(-10.0, 10.0)
    chart.set_y_range(-10.0, 10.0)
    chart.add_vertical_rule(0.0)
    chart.add_diagonal()
    chart.add_scatter([1.0, -2.0, 3.0], [2.0, -1.0, 0.5], "points")
    svg = chart.render()
    assert svg.count("<circle") == 3
    assert 'stroke-dasharray="5,4"' in svg  # diagonal


def test_error_bars():
    chart = SVGChart(title="ci", x_label="x", y_label="y")
    chart.set_x_range(0.0, 10.0)
    chart.set_y_range(0.0, 1.0)
    chart.add_error_bars([5.0], [0.5], [3.0], [7.0])
    svg = chart.render()
    # One horizontal bar plus two whisker ends.
    assert svg.count("<line") >= 3


def test_save(tmp_path, series):
    chart = cdf_chart(series, title="t", x_label="x")
    out = chart.save(tmp_path / "sub" / "chart.svg")
    assert out.exists()
    assert out.read_text().startswith("<svg")


def test_custom_style():
    style = ChartStyle(width=300, height=200)
    chart = SVGChart(title="t", x_label="x", y_label="y", style=style)
    chart.set_x_range(0.0, 1.0)
    chart.set_y_range(0.0, 1.0)
    svg = chart.render()
    assert 'width="300"' in svg and 'height="200"' in svg

"""Failure-injection tests: degenerate inputs across the stack."""

import numpy as np
import pytest

from repro.core import (
    AnalysisError,
    Metric,
    MetricGraph,
    StatsError,
    analyze,
    analyze_graph,
    make_cdf,
)
from repro.datasets import Dataset, DatasetError, DatasetMeta, TracerouteRecord
from repro.measurement import Campaign, CampaignError
from repro.topology import TopologyConfig, TopologyError

NAN = float("nan")


def _meta(method="traceroute"):
    return DatasetMeta(
        name="degenerate", method=method, year=1999,
        duration_days=1, location="North America",
    )


def test_empty_dataset_analysis_is_empty():
    ds = Dataset(meta=_meta(), hosts=["a", "b"], traceroutes=[])
    result = analyze(ds, Metric.RTT, min_samples=1)
    assert len(result) == 0
    assert result.fraction_improved() == 0.0
    assert result.classification_percentages() == {
        c: 0.0 for c in result.classification_counts()
    }


def test_all_probes_lost_dataset():
    records = [
        TracerouteRecord(t=float(i), src="a", dst="b", rtt_samples=(NAN, NAN, NAN))
        for i in range(40)
    ]
    ds = Dataset(meta=_meta(), hosts=["a", "b"], traceroutes=records)
    # No successful RTT samples -> no RTT edge -> empty analysis.
    result = analyze(ds, Metric.RTT, min_samples=1)
    assert len(result) == 0
    # But loss is fully measured (rate 1.0 everywhere).
    loss = analyze(ds, Metric.LOSS, min_samples=1)
    # With only one pair there is no alternate; still empty, not crashing.
    assert len(loss) == 0


def test_two_host_dataset_has_no_alternates():
    records = [
        TracerouteRecord(t=float(i), src=s, dst=d, rtt_samples=(10.0, 11.0, 12.0))
        for i in range(40)
        for s, d in (("a", "b"), ("b", "a"))
    ]
    ds = Dataset(meta=_meta(), hosts=["a", "b"], traceroutes=records)
    result = analyze(ds, Metric.RTT, min_samples=1)
    assert len(result) == 0  # alternates need a third host


def test_single_edge_graph_analysis():
    from repro.core import EdgeData, SampleStats

    g = MetricGraph(Metric.RTT, ["a", "b", "c"])
    g.add_edge(("a", "b"), EdgeData(value=5.0, stats=SampleStats(n=3, mean=5.0, var=0.1)))
    result = analyze_graph(g)
    assert len(result) == 0


def test_make_cdf_rejects_empty():
    with pytest.raises(StatsError):
        make_cdf([])


def test_analyze_rejects_bandwidth_metric():
    ds = Dataset(meta=_meta(), hosts=["a", "b"], traceroutes=[])
    with pytest.raises(AnalysisError):
        analyze(ds, Metric.BANDWIDTH)


def test_dataset_rejects_mixed_records():
    from repro.datasets import TransferRecord

    with pytest.raises(DatasetError):
        Dataset(
            meta=_meta(),
            hosts=["a", "b"],
            traceroutes=[
                TracerouteRecord(t=0.0, src="a", dst="b", rtt_samples=(1.0,))
            ],
            transfers=[
                TransferRecord(
                    t=0.0, src="a", dst="b", rtt_ms=1.0,
                    loss_rate=0.0, bandwidth_kbps=1.0,
                )
            ],
        )


def test_campaign_rejects_degenerate_pools(topo1999, conditions):
    with pytest.raises(CampaignError):
        Campaign(topo1999, conditions, [])
    with pytest.raises(CampaignError):
        Campaign(topo1999, conditions, [topo1999.host_names()[0]])


def test_generator_rejects_unknown_override():
    with pytest.raises(ValueError):
        TopologyConfig.for_era("1999", not_a_field=1)


def test_topology_validate_catches_dangling_host(topo1995):
    import copy

    from repro.topology import Host, get_city

    broken = copy.deepcopy(topo1995)
    broken.hosts.append(
        Host(
            host_id=999,
            name="ghost",
            city=get_city("seattle"),
            asn=next(iter(broken.ases)),
            access_router=10**6,
            access_link=0,
        )
    )
    with pytest.raises(TopologyError):
        broken.validate()


def test_nan_guard_in_ratio():
    from repro.core import PairComparison

    comp = PairComparison(
        src="a", dst="b", metric=Metric.LOSS,
        default_value=0.1, alt_value=0.0, via=("c",),
    )
    assert np.isinf(comp.ratio)
    result_ratio_space = comp.improvement
    assert result_ratio_space == pytest.approx(0.1)

"""Tests for NetworkConditions and PathSampler."""

import itertools

import numpy as np
import pytest

from repro.netsim import (
    BUCKET_SECONDS,
    NetworkConditions,
    PathSampler,
    SECONDS_PER_DAY,
    SECONDS_PER_HOUR,
)
from repro.netsim.conditions import MAX_UTILIZATION, MIN_UTILIZATION


@pytest.fixture(scope="module")
def sampler(topo1999, conditions, resolver):
    names = topo1999.host_names()[:6]
    paths = [
        resolver.resolve_round_trip(a, b)
        for a, b in itertools.permutations(names, 2)
    ]
    return PathSampler(conditions, paths)


def test_utilization_bounds(conditions):
    for t in (0.0, 12 * SECONDS_PER_HOUR, 3.3 * SECONDS_PER_DAY):
        u = conditions.utilization(t)
        assert u.shape == (conditions.n_links,)
        assert np.all(u >= MIN_UTILIZATION)
        assert np.all(u <= MAX_UTILIZATION)


def test_conditions_deterministic_in_time(topo1999):
    a = NetworkConditions(topo1999, seed=5)
    b = NetworkConditions(topo1999, seed=5)
    t = 1.7 * SECONDS_PER_DAY
    np.testing.assert_allclose(a.utilization(t), b.utilization(t))
    np.testing.assert_allclose(a.queue_delay_ms(t), b.queue_delay_ms(t))
    # Query order must not matter.
    c = NetworkConditions(topo1999, seed=5)
    later = c.utilization(t + 10 * BUCKET_SECONDS)
    np.testing.assert_allclose(c.utilization(t), a.utilization(t))
    np.testing.assert_allclose(
        later, a.utilization(t + 10 * BUCKET_SECONDS)
    )


def test_different_seeds_differ(topo1999):
    a = NetworkConditions(topo1999, seed=5)
    b = NetworkConditions(topo1999, seed=6)
    t = SECONDS_PER_DAY
    assert not np.allclose(a.utilization(t), b.utilization(t))


def test_state_frozen_within_bucket(conditions):
    t = 2 * SECONDS_PER_DAY
    u1 = conditions.utilization(t + 1.0)
    u2 = conditions.utilization(t + BUCKET_SECONDS - 1.0)
    # Same bucket: same noise; only the (small) diurnal drift differs.
    assert np.allclose(u1, u2, rtol=0.06)


def test_queue_and_loss_consistent_with_utilization(conditions):
    t = 1.25 * SECONDS_PER_DAY
    q = conditions.queue_delay_ms(t)
    p = conditions.loss_probability(t)
    assert np.all(q >= 0)
    assert np.all((p >= 0) & (p <= 1))
    # Apart from chronic-loss links, links losing packets must be hot.
    u = conditions.utilization(t)
    congestion_only = (p > 0) & (conditions.chronic_loss == 0)
    assert np.all(u[congestion_only] > 0.5)


def test_chronic_loss_structure(conditions):
    chronic = conditions.chronic_loss
    assert chronic.shape == (conditions.n_links,)
    assert np.all(chronic >= 0.0) and np.all(chronic < 0.05)
    # A small but nonzero set of links is chronically lossy.
    frac = np.mean(chronic > 0)
    assert 0.0 < frac < 0.15


def test_chronic_loss_persists_off_peak(conditions):
    """Chronic loss keeps a loss signal alive when congestion loss is
    gone (the weekend effect of Figure 10)."""
    weekend_night = 6 * SECONDS_PER_DAY + 10 * SECONDS_PER_HOUR
    p = conditions.loss_probability(weekend_night)
    chronic_links = conditions.chronic_loss > 0
    assert np.all(p[chronic_links] >= conditions.chronic_loss[chronic_links] - 1e-12)


def test_link_state_snapshot(conditions):
    state = conditions.link_state(0, SECONDS_PER_DAY)
    assert set(state) == {"utilization", "queue_delay_ms", "loss_probability"}


def test_sampler_prop_delays_static(sampler):
    p1 = sampler.prop_delays()
    p2 = sampler.prop_delays()
    np.testing.assert_allclose(p1, p2)
    assert np.all(p1 > 0)


def test_sampler_queue_sums_positive(sampler):
    q = sampler.queue_delay_sums(SECONDS_PER_DAY)
    assert q.shape == (len(sampler),)
    assert np.all(q >= 0)


def test_sampler_loss_probabilities_bounds(sampler):
    p = sampler.loss_probabilities(SECONDS_PER_DAY)
    assert np.all((p >= 0) & (p < 1))


def test_probe_batch_shape_and_losses(sampler, rng):
    batch = sampler.probe(SECONDS_PER_DAY, rng)
    assert batch.rtt_ms.shape == (len(sampler),)
    assert np.all(np.isnan(batch.rtt_ms) == batch.lost)
    ok = batch.rtt_ms[~batch.lost]
    assert np.all(ok >= sampler.prop_delays()[~batch.lost])


def test_probe_with_indices(sampler, rng):
    idx = np.array([0, 3, 5])
    batch = sampler.probe(SECONDS_PER_DAY, rng, indices=idx)
    assert batch.rtt_ms.shape == (3,)


def test_view_matches_arrays(sampler):
    t = 1.5 * SECONDS_PER_DAY
    view = sampler.view(t)
    np.testing.assert_allclose(view.qsum, sampler.queue_delay_sums(t))
    np.testing.assert_allclose(view.ploss, sampler.loss_probabilities(t))


def test_view_probe_pair_rtt_bounds(sampler, rng):
    view = sampler.view(SECONDS_PER_DAY)
    rtts = [view.probe_pair(0, rng) for _ in range(200)]
    finite = [r for r in rtts if not np.isnan(r)]
    assert finite
    assert min(finite) >= view.prop[0]


def test_peak_queues_exceed_night(sampler):
    # Tuesday 19:00 UTC is late morning in NA (peak); 10:00 UTC is night.
    peak = np.mean([
        sampler.queue_delay_sums(SECONDS_PER_DAY + 19 * SECONDS_PER_HOUR + i * 311)
        .mean()
        for i in range(6)
    ])
    night = np.mean([
        sampler.queue_delay_sums(SECONDS_PER_DAY + 10 * SECONDS_PER_HOUR + i * 311)
        .mean()
        for i in range(6)
    ])
    assert peak > 1.5 * night


def test_path_sums_match_manual_per_link_sums(sampler, conditions, topo1999, resolver):
    """CSR aggregation must equal a straightforward per-link sum."""
    import itertools

    names = topo1999.host_names()[:6]
    paths = [
        resolver.resolve_round_trip(a, b)
        for a, b in itertools.permutations(names, 2)
    ]
    t = 1.3 * SECONDS_PER_DAY
    qsum = sampler.queue_delay_sums(t)
    per_link = conditions.queue_delay_ms(t)
    for i, rt in enumerate(paths):
        manual = sum(per_link[l] for l in rt.link_ids)
        assert qsum[i] == pytest.approx(manual)


def test_path_loss_matches_manual_composition(sampler, conditions, topo1999, resolver):
    import itertools

    names = topo1999.host_names()[:6]
    paths = [
        resolver.resolve_round_trip(a, b)
        for a, b in itertools.permutations(names, 2)
    ]
    t = 1.3 * SECONDS_PER_DAY
    ploss = sampler.loss_probabilities(t)
    per_link = conditions.loss_probability(t)
    for i, rt in enumerate(paths):
        survive = 1.0
        for l in rt.link_ids:
            survive *= 1.0 - per_link[l]
        assert ploss[i] == pytest.approx(1.0 - survive)

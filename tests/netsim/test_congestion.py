"""Tests for the congestion (queuing/loss) model."""

import numpy as np
import pytest
from hypothesis import given, strategies as st

from repro.netsim.congestion import (
    BURST_FACTOR,
    LOSS_KNEE,
    MAX_LINK_LOSS,
    MAX_OCCUPANCY,
    loss_probability,
    loss_probability_array,
    mean_queue_delay_ms,
    mean_queue_delay_ms_array,
    queuing_scale_ms,
)
from repro.topology.links import Link, LinkKind

utilizations = st.floats(min_value=0.0, max_value=1.0, allow_nan=False)


def _link(kind=LinkKind.EXCHANGE, capacity=45.0):
    return Link(
        link_id=0,
        u=0,
        v=1,
        kind=kind,
        prop_delay_ms=5.0,
        capacity_mbps=capacity,
        base_utilization=0.5,
    )


def test_queuing_scale_follows_kind_and_capacity():
    hot = queuing_scale_ms(_link(LinkKind.EXCHANGE, 45.0))
    cool = queuing_scale_ms(_link(LinkKind.BACKBONE, 155.0))
    assert hot > cool
    slow = queuing_scale_ms(_link(LinkKind.EXCHANGE, 10.0))
    assert slow > hot  # slower link queues longer per packet


def test_all_kinds_have_burst_factors():
    for kind in LinkKind:
        assert BURST_FACTOR[kind] > 0


@given(u=utilizations)
def test_queue_delay_nonnegative_and_capped(u):
    scale = 3.0
    q = mean_queue_delay_ms(u, scale)
    assert 0.0 <= q <= scale * MAX_OCCUPANCY + 1e-9


def test_queue_delay_monotone_in_utilization():
    qs = [mean_queue_delay_ms(u, 1.0) for u in np.linspace(0, 0.95, 20)]
    assert all(a <= b + 1e-12 for a, b in zip(qs, qs[1:]))


def test_queue_delay_mm1_shape():
    # u/(1-u): at u=0.5 occupancy 1; at u=0.9 occupancy 9.
    assert mean_queue_delay_ms(0.5, 1.0) == pytest.approx(1.0)
    assert mean_queue_delay_ms(0.9, 1.0) == pytest.approx(9.0)


@given(u=utilizations)
def test_loss_probability_bounds(u):
    p = loss_probability(u)
    assert 0.0 <= p <= MAX_LINK_LOSS


def test_loss_zero_below_knee():
    assert loss_probability(LOSS_KNEE) == 0.0
    assert loss_probability(LOSS_KNEE - 0.1) == 0.0
    assert loss_probability(LOSS_KNEE + 0.05) > 0.0


def test_loss_monotone_above_knee():
    ps = [loss_probability(u) for u in np.linspace(LOSS_KNEE, 1.0, 20)]
    assert all(a <= b + 1e-15 for a, b in zip(ps, ps[1:]))


def test_array_versions_match_scalars():
    us = np.linspace(0, 1, 50)
    scales = np.full(50, 2.5)
    np.testing.assert_allclose(
        mean_queue_delay_ms_array(us, scales),
        [mean_queue_delay_ms(u, 2.5) for u in us],
    )
    np.testing.assert_allclose(
        loss_probability_array(us), [loss_probability(u) for u in us]
    )

"""Tests for the simulation calendar."""

from hypothesis import given, strategies as st

from repro.netsim.clock import (
    PST_UTC_OFFSET_HOURS,
    SECONDS_PER_DAY,
    SECONDS_PER_HOUR,
    day_of_week,
    format_sim_time,
    hour_of_day,
    is_weekend,
    pst_hour,
    pst_is_weekend,
    solar_offset_hours,
)

times = st.floats(min_value=0, max_value=60 * SECONDS_PER_DAY, allow_nan=False)


def test_origin_is_monday_midnight():
    assert day_of_week(0.0) == 0
    assert hour_of_day(0.0) == 0.0


def test_day_of_week_cycles():
    assert day_of_week(5 * SECONDS_PER_DAY) == 5  # Saturday
    assert day_of_week(6 * SECONDS_PER_DAY) == 6  # Sunday
    assert day_of_week(7 * SECONDS_PER_DAY) == 0  # Monday again


def test_weekend_detection_utc():
    assert not is_weekend(0.0)
    assert is_weekend(5 * SECONDS_PER_DAY + 1)
    assert is_weekend(6 * SECONDS_PER_DAY + 1)
    assert not is_weekend(7 * SECONDS_PER_DAY + 1)


def test_offset_shifts_weekend_boundary():
    # One second into UTC Saturday is still Friday evening in PST.
    t = 5 * SECONDS_PER_DAY + 1
    assert is_weekend(t)
    assert not is_weekend(t, PST_UTC_OFFSET_HOURS)


def test_pst_hour_offset():
    t = 20 * SECONDS_PER_HOUR  # Monday 20:00 UTC
    assert pst_hour(t) == 12.0
    assert not pst_is_weekend(t)


def test_solar_offsets():
    assert solar_offset_hours(0.0) == 0.0
    assert solar_offset_hours(-120.0) == -8.0  # US west coast
    assert solar_offset_hours(135.0) == 9.0    # Japan


@given(times)
def test_hour_of_day_in_range(t):
    assert 0.0 <= hour_of_day(t) < 24.0


@given(times)
def test_day_of_week_in_range(t):
    assert 0 <= day_of_week(t) <= 6


@given(times)
def test_weekly_periodicity(t):
    week = 7 * SECONDS_PER_DAY
    assert day_of_week(t) == day_of_week(t + week)
    assert abs(hour_of_day(t) - hour_of_day(t + week)) < 1e-6


def test_format_sim_time():
    label = format_sim_time(3 * SECONDS_PER_DAY + 14 * SECONDS_PER_HOUR + 300)
    assert label == "day 3 (Thu) 14:05 UTC"

"""Tests for the diurnal load model."""

import numpy as np
import pytest
from hypothesis import given, strategies as st

from repro.netsim.clock import SECONDS_PER_DAY, SECONDS_PER_HOUR
from repro.netsim.diurnal import (
    WEEKDAY_ANCHORS,
    WEEKEND_LEVEL,
    load_multiplier,
    load_multiplier_array,
)


def test_anchor_structure():
    hours = [h for h, _ in WEEKDAY_ANCHORS]
    assert hours == sorted(hours)
    assert hours[0] == 0.0 and hours[-1] == 24.0
    # Periodic: the multiplier at hour 0 equals hour 24.
    assert WEEKDAY_ANCHORS[0][1] == WEEKDAY_ANCHORS[-1][1]


def test_weekday_mean_is_normalized():
    # Average the multiplier over a full weekday; must be ~1.
    ts = np.arange(0, SECONDS_PER_DAY, 60.0)
    values = [load_multiplier(t, 0.0) for t in ts]
    assert np.mean(values) == pytest.approx(1.0, abs=0.01)


def test_peak_hours_exceed_night():
    peak = load_multiplier(11 * SECONDS_PER_HOUR, 0.0)    # Monday 11:00 local
    night = load_multiplier(3 * SECONDS_PER_HOUR, 0.0)    # Monday 03:00 local
    assert peak > 1.2 * night
    assert peak > 1.0 > night


def test_weekend_is_flat_and_low():
    saturday = 5 * SECONDS_PER_DAY
    morning = load_multiplier(saturday + 10 * SECONDS_PER_HOUR, 0.0)
    evening = load_multiplier(saturday + 20 * SECONDS_PER_HOUR, 0.0)
    assert morning == pytest.approx(evening)
    assert morning < 1.0


def test_offset_shifts_the_peak():
    # Monday 19:00 UTC is 11:00 in PST (-8): peak there, evening in UTC+9.
    t = 19 * SECONDS_PER_HOUR
    west = load_multiplier(t, -8.0)
    east = load_multiplier(t, +9.0)
    assert west > east


@given(
    t=st.floats(min_value=0, max_value=30 * SECONDS_PER_DAY, allow_nan=False),
    offset=st.floats(min_value=-12, max_value=12),
)
def test_multiplier_bounds(t, offset):
    m = load_multiplier(t, offset)
    assert 0.3 < m < 1.8


def test_array_matches_scalar():
    t = 2 * SECONDS_PER_DAY + 15 * SECONDS_PER_HOUR
    offsets = np.array([-8.0, -5.0, 0.0, 1.0, 9.0])
    arr = load_multiplier_array(t, offsets)
    scalars = np.array([load_multiplier(t, o) for o in offsets])
    np.testing.assert_allclose(arr, scalars, rtol=1e-12)


def test_weekend_level_constant():
    t = 6 * SECONDS_PER_DAY + 12 * SECONDS_PER_HOUR  # Sunday noon
    arr = load_multiplier_array(t, np.zeros(3))
    assert np.allclose(arr, arr[0])
    assert arr[0] < 1.0
    assert WEEKEND_LEVEL < 1.0

"""Reporter output: JSON schema and text rendering."""

from repro.quality import run_check
from repro.quality.reporters import (
    REPORT_SCHEMA_VERSION,
    render_json,
    render_rules,
    render_text,
)


def make_tree(tmp_path, body="out = list({1, 2})\n"):
    tmp_path.mkdir(parents=True, exist_ok=True)
    (tmp_path / "pyproject.toml").write_text("[project]\nname='x'\n")
    pkg = tmp_path / "src" / "repro" / "core"
    pkg.mkdir(parents=True)
    (pkg / "mod.py").write_text(body)
    return tmp_path


def test_json_report_schema(tmp_path):
    tree = make_tree(tmp_path)
    result = run_check(["src"], root=tree, use_cache=False)
    report = render_json(result, strict=True)
    assert report["schema_version"] == REPORT_SCHEMA_VERSION
    assert report["strict"] is True
    assert report["exit_code"] == 1
    assert set(report["summary"]) == {
        "files_checked",
        "cache_hits",
        "new_errors",
        "new_warnings",
        "baselined",
        "stale_baseline",
        "deep",
        "deep_cache_hit",
    }
    assert report["summary"]["deep"] is False
    (finding,) = report["findings"]
    assert set(finding) == {
        "rule",
        "severity",
        "path",
        "line",
        "col",
        "message",
        "snippet",
        "fingerprint",
        "baselined",
    }
    assert finding["rule"] == "ORD001"
    assert finding["baselined"] is False
    assert finding["path"] == "src/repro/core/mod.py"
    assert report["stale_baseline"] == []


def test_text_report_fail_and_ok(tmp_path):
    tree = make_tree(tmp_path)
    result = run_check(["src"], root=tree, use_cache=False)
    text = render_text(result)
    assert "src/repro/core/mod.py" in text
    assert "ORD001" in text
    assert "repro check: FAIL" in text

    clean = make_tree(tmp_path / "clean", body="out = sorted({1, 2})\n")
    result = run_check(["src"], root=clean, use_cache=False)
    text = render_text(result)
    assert "0 error(s)" in text
    assert "repro check: OK" in text


def test_render_rules_lists_contracts():
    text = render_rules()
    for rule_id in ("RNG001", "RNG003", "TIME001", "ORD001", "EXC001"):
        assert rule_id in text
    assert "protects:" in text

"""PAR rules: process-boundary safety, including the forwarding trace.

The last two tests are the acceptance pair for the deep pass: a
deliberately-injected closure handed to a supervisor-style forwarding
chain is caught, while the repo's real pool call-sites come back clean.
"""

from pathlib import Path

from repro.quality.graph import analyze_project, build_project_model
from repro.quality.graph.par import check_process_safety, find_submit_sites

REPO_ROOT = Path(__file__).resolve().parents[2]

MANIFEST = 'package = "app"\n\n[layers]\ncore = []\n'

POOL_IMPORT = "from concurrent.futures import ProcessPoolExecutor\n"

SUPERVISOR = (
    POOL_IMPORT
    + "class Supervisor:\n"
    "    def run(self, task, items):\n"
    "        return self._round(task, items)\n"
    "    def _round(self, task, items):\n"
    "        with ProcessPoolExecutor() as pool:\n"
    "            return [pool.submit(task, it) for it in items]\n"
)


def par_findings(factory, files):
    model = build_project_model(factory(files), package="app")
    return check_process_safety(model)


def test_par001_lambda(make_tree_factory):
    findings = par_findings(
        make_tree_factory,
        {
            "app/core/run.py": (
                POOL_IMPORT
                + "def run():\n"
                "    with ProcessPoolExecutor() as pool:\n"
                "        return pool.submit(lambda: 1)\n"
            ),
        },
    )
    (finding,) = findings
    assert finding.rule == "PAR001"
    assert "lambda" in finding.message


def test_par001_nested_def(make_tree_factory):
    findings = par_findings(
        make_tree_factory,
        {
            "app/core/run.py": (
                POOL_IMPORT
                + "def run(x):\n"
                "    def worker(v):\n"
                "        return v + x\n"
                "    with ProcessPoolExecutor() as pool:\n"
                "        return pool.submit(worker, 1)\n"
            ),
        },
    )
    (finding,) = findings
    assert finding.rule == "PAR001"
    assert "closes over" in finding.message


def test_par001_bound_method(make_tree_factory):
    findings = par_findings(
        make_tree_factory,
        {
            "app/core/run.py": (
                POOL_IMPORT
                + "class Builder:\n"
                "    def work(self, v):\n"
                "        return v\n"
                "    def run(self):\n"
                "        with ProcessPoolExecutor() as pool:\n"
                "            return pool.submit(self.work, 1)\n"
            ),
        },
    )
    (finding,) = findings
    assert finding.rule == "PAR001"
    assert "bound method" in finding.message


def test_module_level_worker_passes(make_tree_factory):
    findings = par_findings(
        make_tree_factory,
        {
            "app/core/run.py": (
                POOL_IMPORT
                + "def worker(v):\n"
                "    return v\n"
                "def run(items):\n"
                "    with ProcessPoolExecutor() as pool:\n"
                "        return [pool.submit(worker, it) for it in items]\n"
            ),
        },
    )
    assert findings == []


def test_par001_traced_through_forwarding_chain(make_tree_factory):
    """A closure injected into ``sup.run(task, ...)`` is caught two hops
    from the actual ``pool.submit(task, ...)`` call, at the supplying
    site; the module-level worker through the same chain passes."""
    findings = par_findings(
        make_tree_factory,
        {
            "app/core/sup.py": SUPERVISOR,
            "app/core/good.py": (
                "from app.core.sup import Supervisor\n"
                "def _worker(item):\n"
                "    return item\n"
                "def build(items):\n"
                "    sup = Supervisor()\n"
                "    return sup.run(_worker, items)\n"
            ),
            "app/core/bad.py": (
                "from app.core.sup import Supervisor\n"
                "def build(items):\n"
                "    state = {}\n"
                "    def helper(item):\n"
                "        return state\n"
                "    sup = Supervisor()\n"
                "    return sup.run(helper, items)\n"
            ),
        },
    )
    (finding,) = findings
    assert finding.rule == "PAR001"
    assert finding.path == "src/app/core/bad.py"
    assert "helper" in finding.message


def test_par002_lock_argument(make_tree_factory):
    findings = par_findings(
        make_tree_factory,
        {
            "app/core/run.py": (
                "import threading\n"
                + POOL_IMPORT
                + "def work(x, lock):\n"
                "    return x\n"
                "def run(items):\n"
                "    lock = threading.Lock()\n"
                "    with ProcessPoolExecutor() as pool:\n"
                "        return [pool.submit(work, it, lock) for it in items]\n"
            ),
        },
    )
    (finding,) = findings
    assert finding.rule == "PAR002"
    assert "threading.Lock" in finding.message


def test_par003_worker_global_mutation(make_tree_factory):
    findings = par_findings(
        make_tree_factory,
        {
            "app/core/run.py": (
                POOL_IMPORT
                + "_count = 0\n"
                "def work(x):\n"
                "    global _count\n"
                "    _count = x\n"
                "    return x\n"
                "def run(items):\n"
                "    with ProcessPoolExecutor() as pool:\n"
                "        return [pool.submit(work, it) for it in items]\n"
            ),
        },
    )
    (finding,) = findings
    assert finding.rule == "PAR003"
    assert "_count" in finding.message
    assert finding.line == 5


def test_par003_reaches_transitive_callees(make_tree_factory):
    findings = par_findings(
        make_tree_factory,
        {
            "app/core/state.py": (
                "_mode = None\n"
                "def set_mode(m):\n"
                "    global _mode\n"
                "    _mode = m\n"
            ),
            "app/core/run.py": (
                POOL_IMPORT
                + "from app.core.state import set_mode\n"
                "def work(x):\n"
                "    set_mode(x)\n"
                "    return x\n"
                "def run(items):\n"
                "    with ProcessPoolExecutor() as pool:\n"
                "        return [pool.submit(work, it) for it in items]\n"
            ),
        },
    )
    (finding,) = findings
    assert finding.rule == "PAR003"
    assert finding.path == "src/app/core/state.py"


def test_par003_inline_ignore_suppresses(make_tree_factory):
    root = make_tree_factory(
        {
            "app/core/run.py": (
                POOL_IMPORT
                + "_count = 0\n"
                "def work(x):\n"
                "    global _count\n"
                "    _count = x  # repro: ignore[PAR003]\n"
                "    return x\n"
                "def run(items):\n"
                "    with ProcessPoolExecutor() as pool:\n"
                "        return [pool.submit(work, it) for it in items]\n"
            ),
        },
        MANIFEST,
    )
    assert analyze_project(root, package="app") == []


def test_initializer_checked_for_par001_but_exempt_from_par003(
    make_tree_factory,
):
    # A global write in the initializer is its whole purpose (per-process
    # state setup) — no PAR003.  But a lambda initializer still fails
    # PAR001.
    findings = par_findings(
        make_tree_factory,
        {
            "app/core/run.py": (
                POOL_IMPORT
                + "_flag = False\n"
                "def setup(v):\n"
                "    global _flag\n"
                "    _flag = v\n"
                "def work(x):\n"
                "    return x\n"
                "def run(items):\n"
                "    with ProcessPoolExecutor(initializer=setup) as pool:\n"
                "        return [pool.submit(work, it) for it in items]\n"
            ),
        },
    )
    assert findings == []

    findings = par_findings(
        make_tree_factory,
        {
            "app/core/run.py": (
                POOL_IMPORT
                + "def work(x):\n"
                "    return x\n"
                "def run(items):\n"
                "    with ProcessPoolExecutor(initializer=lambda: None) as pool:\n"
                "        return [pool.submit(work, it) for it in items]\n"
            ),
        },
    )
    (finding,) = findings
    assert finding.rule == "PAR001"
    assert "pool initializer" in finding.message


def test_real_repo_pool_sites_are_found(make_tree_factory):
    model = build_project_model(REPO_ROOT)
    modules_with_sites = {site.module for site in find_submit_sites(model)}
    assert "repro.routing.bgp" in modules_with_sites
    assert "repro.faults.supervisor" in modules_with_sites


def test_real_repo_call_sites_pass_par(make_tree_factory):
    findings = analyze_project(REPO_ROOT)
    par = [f for f in findings if f.rule.startswith("PAR")]
    assert par == []

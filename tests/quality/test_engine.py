"""Engine behavior: suppressions, caching, discovery, fingerprints."""

import json

import pytest

from repro.quality import analyze_source, run_check
from repro.quality.engine import iter_python_files, suppressed_rules

CORE = "src/repro/core/mod.py"


# -- inline suppressions ------------------------------------------------------

def test_targeted_suppression():
    src = "out = list({1, 2})  # repro: ignore[ORD001]\n"
    assert analyze_source(src, CORE) == []


def test_blanket_suppression():
    src = "out = list({1, 2})  # repro: ignore\n"
    assert analyze_source(src, CORE) == []


def test_suppression_for_other_rule_does_not_apply():
    src = "out = list({1, 2})  # repro: ignore[TIME001]\n"
    assert [f.rule for f in analyze_source(src, CORE)] == ["ORD001"]


def test_multi_rule_suppression():
    src = (
        "import numpy as np\n"
        "rng = np.random.default_rng()  # repro: ignore[RNG003, TIME001]\n"
    )
    assert analyze_source(src, CORE) == []


def test_suppressed_rules_parsing():
    assert suppressed_rules("x = 1") is None
    assert suppressed_rules("x = 1  # repro: ignore") == set()
    assert suppressed_rules("x = 1  # repro: ignore[RNG001]") == {"RNG001"}
    assert suppressed_rules("x = 1  # repro: ignore[a001, b002]") == {"A001", "B002"}


# -- fingerprints -------------------------------------------------------------

def test_fingerprints_stable_under_line_drift():
    src = "out = list({1, 2})\n"
    (before,) = analyze_source(src, CORE)
    (after,) = analyze_source("# a new comment line\n" + src, CORE)
    assert before.fingerprint == after.fingerprint
    assert before.line != after.line


def test_identical_lines_get_distinct_fingerprints():
    src = "out = list({1, 2})\nout = list({1, 2})\n"
    first, second = analyze_source(src, CORE)
    assert first.fingerprint != second.fingerprint


# -- file discovery and the result cache --------------------------------------

@pytest.fixture()
def tree(tmp_path):
    (tmp_path / "pyproject.toml").write_text("[project]\nname='x'\n")
    pkg = tmp_path / "src" / "repro" / "core"
    pkg.mkdir(parents=True)
    (pkg / "clean.py").write_text("out = sorted(set([1, 2]))\n")
    (pkg / "dirty.py").write_text("out = list({1, 2})\n")
    (pkg / "__pycache__").mkdir()
    (pkg / "__pycache__" / "junk.py").write_text("x = 1\n")
    return tmp_path


def test_iter_python_files_skips_caches(tree):
    files = iter_python_files(tree, ["src"])
    names = [f.name for f in files]
    assert names == ["clean.py", "dirty.py"]


def test_iter_python_files_missing_path(tree):
    with pytest.raises(FileNotFoundError):
        iter_python_files(tree, ["nope"])


def test_run_check_finds_and_caches(tree):
    result = run_check(["src"], root=tree)
    assert result.files_checked == 2
    assert result.cache_hits == 0
    assert [f.rule for f in result.new_findings] == ["ORD001"]
    assert result.exit_code() == 1

    again = run_check(["src"], root=tree)
    assert again.cache_hits == 2
    assert [f.rule for f in again.new_findings] == ["ORD001"]

    cache_file = tree / ".repro-quality-cache.json"
    assert cache_file.exists()
    payload = json.loads(cache_file.read_text())
    assert set(payload["files"]) == {
        "src/repro/core/clean.py",
        "src/repro/core/dirty.py",
    }


def test_cache_invalidated_by_edit(tree):
    run_check(["src"], root=tree)
    dirty = tree / "src" / "repro" / "core" / "dirty.py"
    dirty.write_text("out = sorted(set([1, 2]))\n")
    result = run_check(["src"], root=tree)
    assert result.cache_hits == 1  # clean.py unchanged, dirty.py re-analyzed
    assert result.new_findings == []
    assert result.exit_code() == 0


def test_no_cache_mode_writes_nothing(tree):
    result = run_check(["src"], root=tree, use_cache=False)
    assert result.files_checked == 2
    assert not (tree / ".repro-quality-cache.json").exists()


def test_corrupt_cache_is_ignored(tree):
    (tree / ".repro-quality-cache.json").write_text("{not json")
    result = run_check(["src"], root=tree)
    assert result.cache_hits == 0
    assert [f.rule for f in result.new_findings] == ["ORD001"]

"""Project-model construction: imports, function summaries, markers."""

from repro.quality.graph import build_project_model


def build(factory, files):
    root = factory(files)
    return build_project_model(root, package="app")


def edges(model, src):
    return {(e.dst, e.typing_only) for e in model.modules[src].imports}


def test_import_edges_absolute_and_from(make_tree_factory):
    model = build(
        make_tree_factory,
        {
            "app/core/a.py": "import app.core.b\nfrom app.core import c\n",
            "app/core/b.py": "",
            "app/core/c.py": "",
        },
    )
    assert edges(model, "app.core.a") == {
        ("app.core.b", False),
        ("app.core.c", False),
    }


def test_from_import_of_name_lands_on_defining_module(make_tree_factory):
    # ``from app.core.b import thing`` depends on app.core.b, not on a
    # phantom module app.core.b.thing.
    model = build(
        make_tree_factory,
        {
            "app/core/a.py": "from app.core.b import thing\n",
            "app/core/b.py": "thing = 1\n",
        },
    )
    assert edges(model, "app.core.a") == {("app.core.b", False)}


def test_relative_imports_resolve(make_tree_factory):
    model = build(
        make_tree_factory,
        {
            "app/core/a.py": "from . import b\nfrom ..util import helpers\n",
            "app/core/b.py": "",
            "app/util/helpers.py": "",
        },
    )
    assert edges(model, "app.core.a") == {
        ("app.core.b", False),
        ("app.util.helpers", False),
    }


def test_type_checking_imports_marked_typing_only(make_tree_factory):
    model = build(
        make_tree_factory,
        {
            "app/core/a.py": (
                "from typing import TYPE_CHECKING\n"
                "if TYPE_CHECKING:\n"
                "    from app.core.b import Thing\n"
            ),
            "app/core/b.py": "class Thing: pass\n",
        },
    )
    assert edges(model, "app.core.a") == {("app.core.b", True)}


def test_function_level_import_is_still_runtime(make_tree_factory):
    model = build(
        make_tree_factory,
        {
            "app/core/a.py": (
                "def f():\n"
                "    from app.core import b\n"
                "    return b\n"
            ),
            "app/core/b.py": "",
        },
    )
    (edge,) = model.modules["app.core.a"].imports
    assert edge.dst == "app.core.b"
    assert edge.function_level and not edge.typing_only


def test_function_summaries(make_tree_factory):
    model = build(
        make_tree_factory,
        {
            "app/core/a.py": (
                "from app.core.b import Helper\n"
                "_state = 0\n"
                "def outer(x, y):\n"
                "    global _state\n"
                "    _state = x\n"
                "    h = Helper()\n"
                "    fn = lambda v: v\n"
                "    def inner(z):\n"
                "        return z\n"
                "    h.work()\n"
                "    return inner, fn\n"
            ),
            "app/core/b.py": (
                "class Helper:\n"
                "    def work(self):\n"
                "        return 1\n"
            ),
        },
    )
    info = model.modules["app.core.a"]
    outer = info.functions["outer"]
    assert outer.params == ["x", "y"]
    assert outer.global_writes == [("_state", 5)]
    assert outer.local_types == {"h": "app.core.b.Helper"}
    assert set(outer.local_defs) == {"fn", "inner"}
    # The nested def is summarized but flagged nested.
    assert model.function("app.core.b.Helper.work") is not None
    # Method resolution through a typed local's class.
    b_info = model.modules["app.core.b"]
    assert b_info.methods["Helper.work"].qualname == "app.core.b:Helper.work"


def test_hotpath_markers(make_tree_factory):
    model = build(
        make_tree_factory,
        {
            # Padding keeps the per-function markers past the module-
            # marker window (first MODULE_MARKER_LINES lines).
            "app/core/k.py": (
                "x0 = 0\n" * 10
                + "# hotpath\n"
                "def above():\n"
                "    return 1\n"
                "def plain():\n"
                "    return 2\n"
                "def trailing():  # hotpath\n"
                "    return 3\n"
            ),
            "app/core/m.py": (
                "# hotpath\n"
                "def anything():\n"
                "    return 1\n"
                "def everything():\n"
                "    return 2\n"
            ),
            "app/core/doc.py": (
                '"""Mentions # hotpath in prose only."""\n'
                "def not_marked():\n"
                "    return 1\n"
            ),
        },
    )
    k = model.modules["app.core.k"].functions
    assert k["above"].hotpath
    assert not k["plain"].hotpath
    assert k["trailing"].hotpath
    # A leading comment marker within the first lines opts the module in.
    m = model.modules["app.core.m"]
    assert m.hotpath_module
    assert m.functions["anything"].hotpath and m.functions["everything"].hotpath
    # A docstring merely mentioning the marker does not.
    doc = model.modules["app.core.doc"]
    assert not doc.hotpath_module
    assert not doc.functions["not_marked"].hotpath


def test_unparseable_files_are_skipped(make_tree_factory):
    model = build(
        make_tree_factory,
        {
            "app/core/good.py": "x = 1\n",
            "app/core/broken.py": "def oops(:\n",
        },
    )
    assert "app.core.good" in model.modules
    assert "app.core.broken" not in model.modules

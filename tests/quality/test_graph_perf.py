"""PERF rules: hot-path purity, opt-in via the ``# hotpath`` marker."""

from repro.quality.findings import Severity
from repro.quality.graph import build_project_model
from repro.quality.graph.perf import check_hot_paths

NP = "import numpy as np\n"


def perf_findings(factory, files):
    model = build_project_model(factory(files), package="app")
    return check_hot_paths(model)


def test_perf001_per_element_loop(make_tree_factory):
    findings = perf_findings(
        make_tree_factory,
        {
            "app/core/kern.py": (
                NP + "# hotpath\n"
                "def total(n):\n"
                "    arr = np.zeros(n)\n"
                "    acc = 0.0\n"
                "    for i in range(len(arr)):\n"
                "        acc += arr[i]\n"
                "    return acc\n"
            ),
        },
    )
    assert [f.rule for f in findings] == ["PERF001", "PERF001"]
    assert "range(len(arr))" in findings[0].message
    assert "element-by-element" in findings[1].message


def test_perf001_needs_provable_array(make_tree_factory):
    # Looping over a plain list the same way is legal: only names the
    # model can prove numpy-backed are considered.
    findings = perf_findings(
        make_tree_factory,
        {
            "app/core/kern.py": (
                "# hotpath\n"
                "def total(items):\n"
                "    acc = 0.0\n"
                "    for i in range(len(items)):\n"
                "        acc += items[i]\n"
                "    return acc\n"
            ),
        },
    )
    assert findings == []


def test_perf001_annotated_param_counts_as_array(make_tree_factory):
    findings = perf_findings(
        make_tree_factory,
        {
            "app/core/kern.py": (
                NP + "# hotpath\n"
                "def total(arr: np.ndarray):\n"
                "    acc = 0.0\n"
                "    for i in range(len(arr)):\n"
                "        acc += arr[i]\n"
                "    return acc\n"
            ),
        },
    )
    assert {f.rule for f in findings} == {"PERF001"}


def test_perf002_scalar_rng_draw(make_tree_factory):
    findings = perf_findings(
        make_tree_factory,
        {
            "app/core/kern.py": (
                "# hotpath\n"
                "def draws(rng, n):\n"
                "    out = []\n"
                "    for _ in range(n):\n"
                "        out.append(rng.normal())\n"
                "    return out\n"
            ),
        },
    )
    (finding,) = findings
    assert finding.rule == "PERF002"
    assert "size=" in finding.message


def test_perf002_batched_draw_passes(make_tree_factory):
    findings = perf_findings(
        make_tree_factory,
        {
            "app/core/kern.py": (
                "# hotpath\n"
                "def draws(rng, chunks):\n"
                "    out = []\n"
                "    for n in chunks:\n"
                "        out.append(rng.normal(size=n))\n"
                "    return out\n"
            ),
        },
    )
    assert findings == []


def test_perf003_allocation_in_loop_is_warning(make_tree_factory):
    findings = perf_findings(
        make_tree_factory,
        {
            "app/core/kern.py": (
                NP + "# hotpath\n"
                "def chunks(n):\n"
                "    out = []\n"
                "    for _ in range(n):\n"
                "        out.append(np.zeros(4))\n"
                "    return out\n"
            ),
        },
    )
    (finding,) = findings
    assert finding.rule == "PERF003"
    assert finding.severity is Severity.WARNING
    assert "preallocate" in finding.message


def test_unmarked_functions_are_not_checked(make_tree_factory):
    findings = perf_findings(
        make_tree_factory,
        {
            "app/core/kern.py": (
                NP
                + "def total(n):\n"
                "    arr = np.zeros(n)\n"
                "    acc = 0.0\n"
                "    for i in range(len(arr)):\n"
                "        acc += arr[i]\n"
                "    return acc\n"
            ),
        },
    )
    assert findings == []


def test_module_marker_checks_every_function(make_tree_factory):
    findings = perf_findings(
        make_tree_factory,
        {
            "app/core/kern.py": (
                "# hotpath\n"
                + NP
                + "def a(n):\n"
                "    arr = np.zeros(n)\n"
                "    for i in range(len(arr)):\n"
                "        pass\n"
                "def b(rng, n):\n"
                "    for _ in range(n):\n"
                "        rng.random()\n"
            ),
        },
    )
    assert {f.rule for f in findings} == {"PERF001", "PERF002"}

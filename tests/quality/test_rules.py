"""Per-rule trigger/pass fixtures for the determinism rule set."""


from repro.quality import analyze_source
from repro.quality.rules import RULES, WALL_CLOCK_ALLOWLIST

CORE = "src/repro/core/mod.py"


def rules_fired(source: str, relpath: str = CORE) -> set[str]:
    return {f.rule for f in analyze_source(source, relpath)}


def test_registry_shape():
    assert len(RULES) >= 8
    for rule_id, rule in RULES.items():
        assert rule.id == rule_id
        assert rule.name and rule.description and rule.protects
        assert rule.severity.value in {"error", "warning"}


# -- RNG001: numpy global stream ----------------------------------------------

def test_rng001_flags_global_numpy_draws():
    assert "RNG001" in rules_fired("import numpy as np\nnp.random.seed(1)\n")
    assert "RNG001" in rules_fired("import numpy as np\nx = np.random.rand(3)\n")
    assert "RNG001" in rules_fired(
        "from numpy.random import choice\n", relpath="tests/test_x.py"
    )


def test_rng001_allows_generator_construction():
    src = "import numpy as np\nrng = np.random.default_rng((seed, 1))\n"
    assert "RNG001" not in rules_fired(src)
    assert "RNG001" not in rules_fired(
        "from numpy.random import default_rng\n", relpath="tests/test_x.py"
    )


# -- RNG002: stdlib random ----------------------------------------------------

def test_rng002_flags_module_level_and_unseeded():
    assert "RNG002" in rules_fired("import random\nx = random.random()\n")
    assert "RNG002" in rules_fired("import random\nr = random.Random()\n")
    assert "RNG002" in rules_fired("import random\nr = random.Random(42)\n")
    assert "RNG002" in rules_fired("from random import shuffle\n")


def test_rng002_allows_seed_derived_instances():
    assert "RNG002" not in rules_fired(
        "import random\nr = random.Random(cfg.seed + 401)\n"
    )
    assert "RNG002" not in rules_fired(
        "import random\nr = random.Random(seed ^ 0x5EED)\n"
    )


def test_rng002_scoped_to_src():
    assert "RNG002" not in rules_fired(
        "import random\nx = random.random()\n", relpath="tests/test_x.py"
    )


# -- RNG003: derived default_rng ----------------------------------------------

def test_rng003_flags_unseeded_scalar_and_seedless_tuple():
    base = "import numpy as np\n"
    assert "RNG003" in rules_fired(base + "rng = np.random.default_rng()\n")
    assert "RNG003" in rules_fired(base + "rng = np.random.default_rng(seed + 3)\n")
    assert "RNG003" in rules_fired(base + "rng = np.random.default_rng((1, 2))\n")


def test_rng003_allows_seed_tuples():
    src = (
        "import numpy as np\n"
        "rng = np.random.default_rng((self.seed, 0xF1A9, *parts))\n"
    )
    assert "RNG003" not in rules_fired(src)


def test_rng003_scoped_to_src():
    assert "RNG003" not in rules_fired(
        "import numpy as np\nrng = np.random.default_rng(7)\n",
        relpath="tests/conftest.py",
    )


# -- TIME001: wall clock ------------------------------------------------------

def test_time001_flags_clock_reads():
    assert "TIME001" in rules_fired("import time\nt = time.time()\n")
    assert "TIME001" in rules_fired("import time\nt = time.perf_counter()\n")
    assert "TIME001" in rules_fired(
        "from datetime import datetime\nd = datetime.now()\n"
    )
    assert "TIME001" in rules_fired("import datetime\nd = datetime.date.today()\n")


def test_time001_allowlisted_modules_exempt():
    for relpath in WALL_CLOCK_ALLOWLIST:
        assert "TIME001" not in rules_fired("import time\nt = time.time()\n", relpath)
    # Every allowlist entry must carry a justification.
    assert all(reason for reason in WALL_CLOCK_ALLOWLIST.values())


# -- ORD001: unordered iteration ----------------------------------------------

def test_ord001_flags_ordered_output_from_sets():
    assert "ORD001" in rules_fired("out = list({1, 2, 3})\n")
    assert "ORD001" in rules_fired("out = tuple(set(xs))\n")
    assert "ORD001" in rules_fired("out = ', '.join({str(x) for x in xs})\n")
    assert "ORD001" in rules_fired("out = [f(x) for x in set(xs)]\n")


def test_ord001_set_operator_chains():
    assert "ORD001" in rules_fired("out = list(set(a) | set(b))\n")
    assert "ORD001" in rules_fired("out = list(set(a).union(b))\n")


def test_ord001_allows_sorted_and_commutative_loops():
    assert "ORD001" not in rules_fired("out = sorted(set(xs))\n")
    assert "ORD001" not in rules_fired("out = list(sorted(set(xs)))\n")
    assert "ORD001" not in rules_fired(
        "total = 0\nfor x in set(xs):\n    total += x\n"
    )


def test_ord001_scoped_to_result_producing_packages():
    assert "ORD001" not in rules_fired(
        "out = list({1, 2})\n", relpath="src/repro/viz/ascii.py"
    )


# -- NUM001: float equality ---------------------------------------------------

def test_num001_flags_nonzero_float_equality():
    assert "NUM001" in rules_fired("ok = x == 0.5\n")
    assert "NUM001" in rules_fired("ok = 1.5 != y\n")
    assert "NUM001" in rules_fired("ok = a == b == 2.5\n")


def test_num001_allows_zero_guard_and_ordering():
    assert "NUM001" not in rules_fired("ok = den == 0.0\n")
    assert "NUM001" not in rules_fired("ok = x < 0.5\n")
    assert "NUM001" not in rules_fired("ok = x == 5\n")  # int equality is exact


# -- DEF001: mutable defaults -------------------------------------------------

def test_def001_flags_mutable_defaults():
    assert "DEF001" in rules_fired("def f(xs=[]):\n    pass\n")
    assert "DEF001" in rules_fired("def f(*, m={}):\n    pass\n")
    assert "DEF001" in rules_fired("def f(s=set()):\n    pass\n")
    assert "DEF001" in rules_fired("def f(d=dict()):\n    pass\n")


def test_def001_allows_immutable_defaults():
    assert "DEF001" not in rules_fired("def f(xs=None, n=3, t=()):\n    pass\n")


def test_def001_applies_everywhere():
    assert "DEF001" in rules_fired("def f(xs=[]):\n    pass\n", "tests/test_x.py")


# -- EXC001: overbroad except -------------------------------------------------

def test_exc001_flags_broad_handlers():
    assert "EXC001" in rules_fired("try:\n    f()\nexcept Exception:\n    pass\n")
    assert "EXC001" in rules_fired("try:\n    f()\nexcept:\n    pass\n")
    assert "EXC001" in rules_fired(
        "try:\n    f()\nexcept (ValueError, Exception):\n    pass\n"
    )


def test_exc001_justification_comment_escape_hatch():
    src = (
        "try:\n"
        "    f()\n"
        "except Exception:  # justified: plugin boundary, errors become WARNs\n"
        "    pass\n"
    )
    assert "EXC001" not in rules_fired(src)


def test_exc001_allows_concrete_handlers():
    src = "try:\n    f()\nexcept (KeyError, ValueError):\n    pass\n"
    assert "EXC001" not in rules_fired(src)


# -- HASH001: salted builtin hash ---------------------------------------------

def test_hash001_flags_builtin_hash():
    assert "HASH001" in rules_fired("k = hash(name)\n")


def test_hash001_allows_dunder_hash_methods():
    src = (
        "class A:\n"
        "    def __hash__(self):\n"
        "        return hash(self.asn)\n"
    )
    assert "HASH001" not in rules_fired(src)


def test_hash001_allows_hashlib():
    assert "HASH001" not in rules_fired(
        "import hashlib\nk = hashlib.sha256(b'x').hexdigest()\n"
    )


# -- E000: parse errors -------------------------------------------------------

def test_parse_error_is_a_finding():
    findings = analyze_source("def broken(:\n", CORE)
    assert [f.rule for f in findings] == ["E000"]
    assert findings[0].severity.value == "error"

"""CLI behavior of the whole-program pass: --deep, --changed, caching."""

import json
import subprocess

from repro.quality import find_root, run_check
from repro.quality.cli import main as quality_main
from tests.quality.conftest import write_tree

MANIFEST = (
    'package = "repro"\n'
    "\n"
    "[layers]\n"
    "core = []\n"
    'svc = ["core"]\n'
)


def test_deep_clean_tree_exits_zero(make_tree_factory, capsys):
    tree = make_tree_factory(
        {
            "repro/core/x.py": "x = 1\n",
            "repro/svc/s.py": "from repro.core import x\n",
        },
        MANIFEST,
    )
    rc = quality_main(["--root", str(tree), "--no-cache", "--deep"])
    assert rc == 0
    out = capsys.readouterr().out
    assert "deep pass ran" in out
    assert "repro check: OK" in out


def test_deep_violation_gates(make_tree_factory, capsys):
    tree = make_tree_factory(
        {
            "repro/core/x.py": "from repro.svc import s\n",
            "repro/svc/s.py": "s = 1\n",
        },
        MANIFEST,
    )
    rc = quality_main(["--root", str(tree), "--no-cache", "--deep"])
    assert rc == 1
    assert "ARCH002" in capsys.readouterr().out
    # The same tree without --deep passes: the violation is invisible to
    # per-file rules.
    assert quality_main(["--root", str(tree), "--no-cache"]) == 0


def test_deep_without_manifest_is_usage_error(make_tree_factory, capsys):
    tree = make_tree_factory({"repro/core/x.py": "x = 1\n"})
    rc = quality_main(["--root", str(tree), "--no-cache", "--deep"])
    assert rc == 2
    assert "manifest" in capsys.readouterr().err


def test_deep_result_is_cached_by_project_digest(make_tree_factory):
    tree = make_tree_factory(
        {
            "repro/core/x.py": "x = 1\n",
            "repro/svc/s.py": "from repro.core import x\n",
        },
        MANIFEST,
    )
    first = run_check(["src"], root=tree, deep=True)
    assert first.deep and not first.deep_cache_hit
    second = run_check(["src"], root=tree, deep=True)
    assert second.deep_cache_hit
    # Any module edit invalidates the whole-program result.
    (tree / "src" / "repro" / "core" / "x.py").write_text("x = 2\n")
    third = run_check(["src"], root=tree, deep=True)
    assert not third.deep_cache_hit


def test_deep_on_this_repo_is_clean():
    """Acceptance: the committed tree passes the whole-program pass."""
    root = find_root()
    rc = quality_main(
        ["--root", str(root), "--no-cache", "--deep", "--strict", "src/repro"]
    )
    assert rc == 0


def git_tree(tmp_path, files):
    tree = write_tree(tmp_path, files)
    run = lambda *args: subprocess.run(  # noqa: E731
        ["git", "-c", "user.email=t@t", "-c", "user.name=t", *args],
        cwd=tree,
        check=True,
        capture_output=True,
    )
    run("init", "-q")
    run("add", "-A")
    run("commit", "-q", "-m", "seed")
    return tree


def test_changed_scopes_to_dirty_and_untracked_files(tmp_path, capsys):
    tree = git_tree(
        tmp_path,
        {
            "repro/core/a.py": "a = sorted({1})\n",
            "repro/core/b.py": "b = 1\n",
        },
    )
    # Nothing changed yet.
    assert quality_main(["--root", str(tree), "--no-cache", "--changed"]) == 0
    assert "no changed python files" in capsys.readouterr().out
    # One tracked file modified, one untracked added — both violating.
    (tree / "src" / "repro" / "core" / "a.py").write_text("a = list({1, 2})\n")
    (tree / "src" / "repro" / "core" / "new.py").write_text(
        "import time\nt = time.time()\n"
    )
    rc = quality_main(
        ["--root", str(tree), "--no-cache", "--changed", "--format", "json"]
    )
    assert rc == 1
    report = json.loads(capsys.readouterr().out)
    assert report["summary"]["files_checked"] == 2
    assert {f["rule"] for f in report["findings"]} == {"ORD001", "TIME001"}


def test_changed_with_explicit_paths_is_usage_error(tmp_path, capsys):
    tree = git_tree(tmp_path, {"repro/core/a.py": "a = 1\n"})
    rc = quality_main(["--root", str(tree), "--changed", "src"])
    assert rc == 2
    assert "mutually exclusive" in capsys.readouterr().err


def test_changed_outside_git_is_usage_error(make_tree_factory, capsys):
    tree = make_tree_factory({"repro/core/a.py": "a = 1\n"})
    rc = quality_main(["--root", str(tree), "--no-cache", "--changed"])
    assert rc == 2
    assert "git" in capsys.readouterr().err

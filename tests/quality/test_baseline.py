"""Baseline add/match/expire behavior."""

import pytest

from repro.quality import Baseline, analyze_source
from repro.quality.baseline import DEFAULT_REASON, BaselineEntry, BaselineError

CORE = "src/repro/core/mod.py"


def findings_for(src: str):
    return analyze_source(src, CORE)


def test_partition_splits_new_and_baselined():
    findings = findings_for("a = list({1})\nb = tuple({2})\n")
    assert len(findings) == 2
    baseline = Baseline().updated(findings[:1])
    new, baselined, stale = baseline.partition(findings)
    assert [f.snippet for f in new] == ["b = tuple({2})"]
    assert [f.snippet for f in baselined] == ["a = list({1})"]
    assert stale == []


def test_stale_entries_reported_and_expired():
    findings = findings_for("a = list({1})\n")
    baseline = Baseline().updated(findings)
    # The violation was fixed: the entry is now stale.
    new, baselined, stale = baseline.partition([])
    assert new == [] and baselined == []
    assert [e.fingerprint for e in stale] == [findings[0].fingerprint]
    # --update-baseline expires it.
    assert baseline.updated([]).entries == {}


def test_update_preserves_curated_reasons():
    findings = findings_for("a = list({1})\n")
    baseline = Baseline().updated(findings)
    fp = findings[0].fingerprint
    assert baseline.entries[fp].reason == DEFAULT_REASON
    baseline.entries[fp] = BaselineEntry(
        fingerprint=fp, rule="ORD001", path=CORE, reason="curated justification"
    )
    assert baseline.updated(findings).entries[fp].reason == "curated justification"


def test_save_and_load_roundtrip(tmp_path):
    findings = findings_for("a = list({1})\n")
    baseline = Baseline().updated(findings)
    path = tmp_path / "quality-baseline.json"
    baseline.save(path)
    loaded = Baseline.load(path)
    assert loaded.entries.keys() == baseline.entries.keys()
    entry = next(iter(loaded.entries.values()))
    assert entry.rule == "ORD001"
    assert entry.path == CORE


def test_load_missing_file_is_empty():
    assert Baseline.load(__import__("pathlib").Path("/nonexistent/b.json")).entries == {}


def test_load_rejects_bad_schema(tmp_path):
    path = tmp_path / "b.json"
    path.write_text('{"version": 999, "entries": []}')
    with pytest.raises(BaselineError):
        Baseline.load(path)
    path.write_text("{corrupt")
    with pytest.raises(BaselineError):
        Baseline.load(path)

"""CLI behavior of `repro check` / `python -m repro.quality`: exit codes."""

import json

from repro.cli import main as repro_main
from repro.quality.cli import main as quality_main


def make_tree(tmp_path, body):
    tmp_path.mkdir(parents=True, exist_ok=True)
    (tmp_path / "pyproject.toml").write_text("[project]\nname='x'\n")
    pkg = tmp_path / "src" / "repro" / "core"
    pkg.mkdir(parents=True)
    (pkg / "mod.py").write_text(body)
    return tmp_path


def test_clean_tree_exits_zero(tmp_path, capsys):
    tree = make_tree(tmp_path, "out = sorted({1, 2})\n")
    rc = quality_main(["--root", str(tree), "--no-cache"])
    assert rc == 0
    assert "repro check: OK" in capsys.readouterr().out


def test_planted_unseeded_rng_fails(tmp_path, capsys):
    tree = make_tree(
        tmp_path, "import numpy as np\nrng = np.random.default_rng()\n"
    )
    rc = quality_main(["--root", str(tree), "--no-cache"])
    assert rc == 1
    out = capsys.readouterr().out
    assert "RNG003" in out
    assert "repro check: FAIL" in out


def test_repro_check_subcommand(tmp_path, capsys):
    tree = make_tree(tmp_path, "t = __import__('time').time()\n")
    rc = repro_main(["check", "--root", str(tree), "--no-cache"])
    assert rc == 0  # __import__ chains are not resolvable module aliases
    tree2 = make_tree(tmp_path / "t2", "import time\nt = time.time()\n")
    rc = repro_main(["check", "--root", str(tree2), "--no-cache"])
    assert rc == 1
    assert "TIME001" in capsys.readouterr().out


def test_missing_path_is_usage_error(tmp_path, capsys):
    tree = make_tree(tmp_path, "x = 1\n")
    rc = quality_main(["--root", str(tree), "--no-cache", "does-not-exist"])
    assert rc == 2
    assert "repro check" in capsys.readouterr().err


def test_json_format(tmp_path, capsys):
    tree = make_tree(tmp_path, "out = list({1, 2})\n")
    rc = quality_main(["--root", str(tree), "--no-cache", "--format", "json"])
    assert rc == 1
    report = json.loads(capsys.readouterr().out)
    assert report["summary"]["new_errors"] == 1
    assert report["findings"][0]["rule"] == "ORD001"


def test_update_baseline_then_strict_gates_stale(tmp_path, capsys):
    tree = make_tree(tmp_path, "out = list({1, 2})\n")
    # Grandfather the finding.
    rc = quality_main(["--root", str(tree), "--no-cache", "--update-baseline"])
    assert rc == 0
    assert (tree / "quality-baseline.json").exists()
    # Baselined finding no longer gates.
    rc = quality_main(["--root", str(tree), "--no-cache"])
    assert rc == 0
    # Fixing the violation leaves a stale entry: strict mode gates on it...
    (tree / "src" / "repro" / "core" / "mod.py").write_text("out = sorted({1})\n")
    assert quality_main(["--root", str(tree), "--no-cache"]) == 0
    capsys.readouterr()
    rc = quality_main(["--root", str(tree), "--no-cache", "--strict"])
    assert rc == 1
    assert "stale baseline" in capsys.readouterr().out
    # ...and --update-baseline expires it.
    quality_main(["--root", str(tree), "--no-cache", "--update-baseline"])
    assert json.loads((tree / "quality-baseline.json").read_text())["entries"] == []
    assert quality_main(["--root", str(tree), "--no-cache", "--strict"]) == 0


def test_list_rules(capsys):
    assert quality_main(["--list-rules"]) == 0
    out = capsys.readouterr().out
    assert "RNG001" in out
    assert "HASH001" in out


def test_repo_at_head_is_clean():
    """The acceptance criterion: the committed tree passes strict checking."""
    from repro.quality import find_root

    root = find_root()
    rc = quality_main(["--root", str(root), "--no-cache", "--strict", "src/repro"])
    assert rc == 0

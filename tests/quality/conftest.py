"""Helpers for quality-engine tests: synthetic project trees."""

from pathlib import Path

import pytest


def write_tree(root: Path, files: dict[str, str], manifest: str | None = None) -> Path:
    """Materialize a synthetic project for whole-program analysis.

    ``files`` maps paths relative to ``src/`` ("app/core/mod.py") to
    source text.  Package ``__init__.py`` files are created implicitly.
    ``manifest`` (TOML text) lands at docs/architecture.toml.
    """
    root.mkdir(parents=True, exist_ok=True)
    (root / "pyproject.toml").write_text("[project]\nname='x'\n")
    for rel, body in files.items():
        path = root / "src" / rel
        path.parent.mkdir(parents=True, exist_ok=True)
        for parent in path.relative_to(root / "src").parents:
            if str(parent) != ".":
                init = root / "src" / parent / "__init__.py"
                if not init.exists():
                    init.write_text("")
        path.write_text(body)
    if manifest is not None:
        docs = root / "docs"
        docs.mkdir(exist_ok=True)
        (docs / "architecture.toml").write_text(manifest)
    return root


@pytest.fixture
def make_tree_factory(tmp_path):
    """A factory writing numbered synthetic trees under tmp_path."""
    counter = {"n": 0}

    def factory(files: dict[str, str], manifest: str | None = None) -> Path:
        counter["n"] += 1
        return write_tree(tmp_path / f"tree{counter['n']}", files, manifest)

    return factory

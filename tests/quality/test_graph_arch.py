"""ARCH rules: cycles, layering, manifest validation."""

import pytest

from repro.quality.graph import (
    ManifestError,
    analyze_project,
    build_project_model,
    load_manifest,
)

MANIFEST = (
    'package = "app"\n'
    "\n"
    "[layers]\n"
    "core = []\n"
    "util = []\n"
    'svc = ["core", "util"]\n'
    "\n"
    "[toplevel]\n"
    'modules = ["cli"]\n'
)


def analyze(factory, files, manifest=MANIFEST):
    root = factory(files, manifest)
    return analyze_project(root, package="app")


def test_arch001_flags_runtime_cycle(make_tree_factory):
    findings = analyze(
        make_tree_factory,
        {
            "app/core/a.py": "from app.core import b\n",
            "app/core/b.py": "from app.core import a\n",
        },
    )
    assert [f.rule for f in findings] == ["ARCH001", "ARCH001"]
    assert {f.path for f in findings} == {
        "src/app/core/a.py",
        "src/app/core/b.py",
    }
    assert all("cycle" in f.message for f in findings)
    assert all(f.fingerprint for f in findings)


def test_arch002_flags_upward_import(make_tree_factory):
    findings = analyze(
        make_tree_factory,
        {
            "app/core/x.py": "from app.svc import y\n",
            "app/svc/y.py": "",
        },
    )
    (finding,) = findings
    assert finding.rule == "ARCH002"
    assert finding.path == "src/app/core/x.py"
    assert "'svc'" in finding.message


def test_arch002_flags_import_of_application_shell(make_tree_factory):
    findings = analyze(
        make_tree_factory,
        {
            "app/cli.py": "",
            "app/core/x.py": "import app.cli\n",
        },
    )
    (finding,) = findings
    assert finding.rule == "ARCH002"
    assert "application shell" in finding.message


def test_arch002_declared_edge_passes(make_tree_factory):
    findings = analyze(
        make_tree_factory,
        {
            "app/svc/s.py": "from app.core import x\nfrom app.util import u\n",
            "app/core/x.py": "",
            "app/util/u.py": "",
        },
    )
    assert findings == []


def test_arch003_flags_undeclared_layer(make_tree_factory):
    findings = analyze(
        make_tree_factory,
        {"app/stray/z.py": "x = 1\n"},
    )
    assert all(f.rule == "ARCH003" for f in findings)
    assert "src/app/stray/z.py" in {f.path for f in findings}


def test_typing_only_imports_exempt(make_tree_factory):
    findings = analyze(
        make_tree_factory,
        {
            "app/core/x.py": (
                "from typing import TYPE_CHECKING\n"
                "if TYPE_CHECKING:\n"
                "    from app.svc import y\n"
            ),
            "app/svc/y.py": (
                "from typing import TYPE_CHECKING\n"
                "if TYPE_CHECKING:\n"
                "    from app.core import x\n"
            ),
        },
    )
    # Neither the upward edge nor the would-be cycle fires: both are
    # erased at runtime.
    assert findings == []


def test_missing_manifest_raises(make_tree_factory):
    root = make_tree_factory({"app/core/a.py": ""})
    with pytest.raises(ManifestError, match="not found"):
        analyze_project(root, package="app")


def test_cyclic_manifest_raises(make_tree_factory):
    root = make_tree_factory(
        {"app/core/a.py": ""},
        'package = "app"\n[layers]\ncore = ["svc"]\nsvc = ["core"]\n',
    )
    with pytest.raises(ManifestError, match="cyclic"):
        load_manifest(root / "docs" / "architecture.toml")


def test_manifest_undeclared_dependency_raises(make_tree_factory):
    root = make_tree_factory(
        {"app/core/a.py": ""},
        'package = "app"\n[layers]\ncore = ["ghost"]\n',
    )
    with pytest.raises(ManifestError, match="undeclared"):
        load_manifest(root / "docs" / "architecture.toml")


def test_model_reuse_skips_rebuild(make_tree_factory):
    root = make_tree_factory(
        {"app/core/a.py": "from app.core import b\n", "app/core/b.py": ""},
        MANIFEST,
    )
    model = build_project_model(root, package="app")
    findings = analyze_project(root, package="app", model=model)
    assert findings == []

"""Baseline and cache behavior when files move.

Fingerprints include the file path, so renaming a file re-keys its
findings: the old baseline entry goes stale (and expires on
``--update-baseline``) while the finding at the new path gates as new.
Crucially, moving the file *back* must not resurrect an expired entry —
and the content-hash cache, which still holds the old path's result,
must not change any of that.
"""

import json

from repro.quality import run_check
from repro.quality.cli import main as quality_main

VIOLATION = "out = list({1, 2})\n"


def make_tree(tmp_path):
    tmp_path.mkdir(parents=True, exist_ok=True)
    (tmp_path / "pyproject.toml").write_text("[project]\nname='x'\n")
    pkg = tmp_path / "src" / "repro" / "core"
    pkg.mkdir(parents=True)
    (pkg / "mod.py").write_text(VIOLATION)
    return tmp_path


def baseline_paths(tree):
    data = json.loads((tree / "quality-baseline.json").read_text())
    return [entry["path"] for entry in data["entries"]]


def test_rename_rekeys_finding_and_expires_old_entry(tmp_path):
    tree = make_tree(tmp_path)
    pkg = tree / "src" / "repro" / "core"

    assert quality_main(["--root", str(tree), "--update-baseline"]) == 0
    assert baseline_paths(tree) == ["src/repro/core/mod.py"]
    assert quality_main(["--root", str(tree)]) == 0

    # Rename: same content, new path -> new fingerprint.  The finding
    # gates again and the old entry is stale.
    (pkg / "mod.py").rename(pkg / "moved.py")
    result = run_check(["src"], root=tree)
    assert [f.path for f in result.new_findings] == ["src/repro/core/moved.py"]
    assert [e.path for e in result.stale_baseline] == ["src/repro/core/mod.py"]
    assert result.exit_code() == 1

    # --update-baseline expires the stale entry and records the new path.
    assert quality_main(["--root", str(tree), "--update-baseline"]) == 0
    assert baseline_paths(tree) == ["src/repro/core/moved.py"]
    assert quality_main(["--root", str(tree)]) == 0


def test_moving_back_does_not_resurrect_expired_entry(tmp_path):
    tree = make_tree(tmp_path)
    pkg = tree / "src" / "repro" / "core"

    quality_main(["--root", str(tree), "--update-baseline"])
    (pkg / "mod.py").rename(pkg / "moved.py")
    quality_main(["--root", str(tree), "--update-baseline"])
    assert baseline_paths(tree) == ["src/repro/core/moved.py"]

    # The original entry for mod.py expired above.  Moving the file back
    # re-creates a finding with the *original* fingerprint — it must gate
    # as new, not be quietly matched by history.
    (pkg / "moved.py").rename(pkg / "mod.py")
    result = run_check(["src"], root=tree)
    assert [f.path for f in result.new_findings] == ["src/repro/core/mod.py"]
    assert [e.path for e in result.stale_baseline] == ["src/repro/core/moved.py"]
    assert result.exit_code() == 1


def test_content_cache_does_not_follow_renames(tmp_path):
    tree = make_tree(tmp_path)
    pkg = tree / "src" / "repro" / "core"

    first = run_check(["src"], root=tree)
    assert (first.files_checked, first.cache_hits) == (1, 0)
    warm = run_check(["src"], root=tree)
    assert warm.cache_hits == 1

    # A renamed file is a cache miss even with identical content: results
    # are keyed per path, and the re-analysis reports the new path.
    (pkg / "mod.py").rename(pkg / "moved.py")
    moved = run_check(["src"], root=tree)
    assert moved.cache_hits == 0
    assert [f.path for f in moved.new_findings] == ["src/repro/core/moved.py"]

    # Moving back hits the original entry again — and still yields the
    # original path, never the stale one.
    (pkg / "moved.py").rename(pkg / "mod.py")
    back = run_check(["src"], root=tree)
    assert back.cache_hits == 1
    assert [f.path for f in back.new_findings] == ["src/repro/core/mod.py"]
